//! The lint rules, R1–R10, over the [`crate::model`] workspace model.
//!
//! Every rule is a plain function over model types so the test suite
//! can point them at seeded-violation fixtures under `tests/fixtures/`
//! (which the workspace walker skips). Rules 2/3/5/6 — previously
//! substring scans over raw lines — now pattern-match the token
//! stream, so occurrences inside string literals and comments can no
//! longer produce findings (the old false-positive classes have
//! regression fixtures).

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use ltree::SchemeRegistry;

use crate::archdoc::{CrateGraph, WireTagTable};
use crate::lexer::{string_value, TokKind, Token};
use crate::model::{fn_items, SourceFile, Workspace};
use crate::Finding;

fn finding(path: &Path, line: u32, rule: &'static str, message: String) -> Finding {
    Finding {
        path: path.to_path_buf(),
        line: line as usize,
        rule,
        message,
    }
}

// ---------------------------------------------------------------------
// R1 · crate-attrs
// ---------------------------------------------------------------------

/// Rule 1 (`crate-attrs`): a crate root must carry both lint
/// attributes.
pub fn check_crate_attrs(path: &Path, content: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for attr in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
        if !content.lines().any(|l| l.trim() == attr) {
            out.push(finding(
                path,
                0,
                "crate-attrs",
                format!("crate root is missing `{attr}`"),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// R2 · fixed-port
// ---------------------------------------------------------------------

/// Rule 2 (`fixed-port`): no fixed TCP ports in test string literals.
/// Flags `127.0.0.1:<port>` / `localhost:<port>` for any literal port
/// other than `0`. Token-based: a port mentioned in a comment (or a
/// doc example) is not a finding.
pub fn check_fixed_ports(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for tok in &file.tokens {
        if !tok.kind.is_string() {
            continue;
        }
        let Some(value) = string_value(tok, &file.content) else {
            continue;
        };
        for host in ["127.0.0.1:", "localhost:"] {
            let mut rest = value.as_str();
            while let Some(pos) = rest.find(host) {
                let after = &rest[pos + host.len()..];
                let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
                if !digits.is_empty() && digits != "0" {
                    out.push(finding(
                        &file.path,
                        tok.line,
                        "fixed-port",
                        format!(
                            "fixed port `{host}{digits}` in a test — bind `:0` and pass \
                             the OS-assigned address around instead"
                        ),
                    ));
                }
                rest = after;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// R3 · lock-unwrap
// ---------------------------------------------------------------------

const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Rule 3 (`lock-unwrap`): no `unwrap()` on lock results; poisoning
/// must be recovered with `unwrap_or_else(|p| p.into_inner())` (the
/// repo-wide idiom). Token-based: matches the call chain
/// `.lock().unwrap()` (and the `read`/`write` variants) in code only —
/// never inside strings or comments.
pub fn check_lock_unwrap(file: &SourceFile) -> Vec<Finding> {
    let src = &file.content;
    let code: Vec<&Token> = file.code_tokens().collect();
    let mut out = Vec::new();
    for w in code.windows(8) {
        let texts: Vec<&str> = w.iter().map(|t| t.text(src)).collect();
        if texts[0] == "."
            && LOCK_METHODS.contains(&texts[1])
            && texts[2] == "("
            && texts[3] == ")"
            && texts[4] == "."
            && texts[5] == "unwrap"
            && texts[6] == "("
            && texts[7] == ")"
        {
            out.push(finding(
                &file.path,
                w[1].line,
                "lock-unwrap",
                format!(
                    "`.{}().unwrap()` propagates lock poisoning — use \
                     `unwrap_or_else(|p| p.into_inner())`",
                    texts[1]
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// R4 · spec-grammar
// ---------------------------------------------------------------------

/// Extract every backtick span from one line. Ignores multi-backtick
/// fences (``` and longer).
pub fn backtick_spans(line: &str) -> Vec<&str> {
    let mut spans = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        if after.starts_with('`') {
            // A fence or empty span: skip the run of backticks.
            let run = after.chars().take_while(|&c| c == '`').count();
            rest = &after[run..];
            continue;
        }
        let Some(close) = after.find('`') else { break };
        spans.push(&after[..close]);
        rest = &after[close + 1..];
    }
    spans
}

/// Does this span look like a registry spec (`name(args)` over the
/// whole span, scheme-name charset) as opposed to arbitrary quoted
/// code? Returns the top-level name when it does.
fn spec_shaped(span: &str) -> Option<&str> {
    let open = span.find('(')?;
    if !span.ends_with(')') {
        return None;
    }
    let name = &span[..open];
    let mut chars = name.chars();
    let first = chars.next()?;
    if !first.is_ascii_lowercase() {
        return None;
    }
    if !chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-') {
        return None;
    }
    Some(name)
}

fn check_spec_line(path: &Path, line_no: u32, line: &str, reg: &SchemeRegistry) -> Vec<Finding> {
    let mut out = Vec::new();
    for span in backtick_spans(line) {
        let Some(name) = spec_shaped(span) else {
            continue;
        };
        if !reg.contains(name) {
            continue;
        }
        // Doc grammar templates use `[...]` for optional parts and
        // `…`/`...` or capitalized metavariables for placeholders;
        // strip the optional markers and skip spans that still hold
        // placeholder characters rather than a concrete spec.
        let concrete = span.replace(['[', ']'], "");
        if concrete.contains('…')
            || concrete.contains("...")
            || concrete.chars().any(|c| c.is_ascii_uppercase())
        {
            continue;
        }
        if let Err(e) = reg.validate_spec(&concrete) {
            out.push(finding(
                path,
                line_no,
                "spec-grammar",
                format!("quoted spec `{span}` does not parse: {e}"),
            ));
        }
    }
    out
}

/// Rule 4 (`spec-grammar`), Rust side: backtick-quoted spec strings in
/// doc comments whose top-level name is a registered scheme must parse
/// against the live grammar. Doc comments are found via the token
/// stream, so a spec-shaped string in *code* is never scanned.
pub fn check_spec_strings_rs(file: &SourceFile, reg: &SchemeRegistry) -> Vec<Finding> {
    let mut out = Vec::new();
    for tok in &file.tokens {
        if !tok.kind.is_doc() {
            continue;
        }
        let text = tok.text(&file.content);
        for (off, raw) in text.lines().enumerate() {
            let line = raw
                .trim_start()
                .trim_start_matches("///")
                .trim_start_matches("//!")
                .trim_start_matches("/**")
                .trim_start_matches("/*!")
                .trim_start_matches('*');
            out.extend(check_spec_line(
                &file.path,
                tok.line + off as u32,
                line,
                reg,
            ));
        }
    }
    out
}

/// Rule 4 (`spec-grammar`), markdown side: every line outside fenced
/// code blocks is scanned for spec-shaped backtick spans.
pub fn check_spec_strings_md(path: &Path, content: &str, reg: &SchemeRegistry) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (idx, raw) in content.lines().enumerate() {
        if raw.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        out.extend(check_spec_line(path, idx as u32 + 1, raw, reg));
    }
    out
}

// ---------------------------------------------------------------------
// R5 · fixed-path
// ---------------------------------------------------------------------

/// Rule 5 (`fixed-path`): no fixed absolute filesystem paths in test
/// string literals — tests derive scratch space at runtime
/// (`ltree::remote::scratch_dir` / `std::env::temp_dir()`) so parallel
/// runs never collide. Token-based: a path in a comment is not a
/// finding.
pub fn check_fixed_paths(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for tok in &file.tokens {
        if !tok.kind.is_string() {
            continue;
        }
        let Some(value) = string_value(tok, &file.content) else {
            continue;
        };
        let fixed = ["/tmp/", "/var/", "/home/"]
            .iter()
            .any(|p| value.starts_with(p))
            || value.starts_with("C:\\");
        if fixed {
            out.push(finding(
                &file.path,
                tok.line,
                "fixed-path",
                format!(
                    "fixed filesystem path `{value}` in a test — derive scratch space \
                     at runtime (`ltree::remote::scratch_dir` or `std::env::temp_dir()`) \
                     so parallel runs cannot collide"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// R6 · metric-names
// ---------------------------------------------------------------------

const METRIC_PREFIXES: [&str; 4] = ["net/", "wal/", "audit/", "obs/"];

/// Canonical form of a series name for the naming-table lookup: format
/// placeholders (`{…}`) and literal digit runs both become `<i>`, so
/// `net/conn{}` in a `format!` and `net/conn0/round-trips` in a test
/// both resolve to the table's `net/conn<i>…` family row.
pub fn normalize_metric_name(name: &str) -> String {
    let mut out = String::new();
    let mut chars = name.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '{' {
            for n in chars.by_ref() {
                if n == '}' {
                    break;
                }
            }
            out.push_str("<i>");
        } else if c.is_ascii_digit() {
            while chars.peek().is_some_and(char::is_ascii_digit) {
                chars.next();
            }
            out.push_str("<i>");
        } else {
            out.push(c);
        }
    }
    out
}

/// Does a documented naming-table entry cover a normalized candidate?
/// `<i>` in the candidate matches any non-`/` run in the entry, and an
/// entry extending past the candidate still counts — prefix literals
/// (`starts_with("net/conn")` filters) are covered by the family rows
/// they select.
pub fn metric_name_matches(entry: &str, candidate: &str) -> bool {
    if let Some(pos) = candidate.find("<i>") {
        let (head, rest) = (&candidate[..pos], &candidate[pos + 3..]);
        let Some(tail) = entry.strip_prefix(head) else {
            return false;
        };
        let limit = tail.find('/').unwrap_or(tail.len());
        (0..=limit).any(|k| metric_name_matches(&tail[k..], rest))
    } else {
        entry.starts_with(candidate)
    }
}

/// The series names `ARCHITECTURE.md` documents: every backtick-quoted
/// span under a policed namespace, wherever it appears in the file (the
/// Observability naming table in practice).
pub fn documented_metric_names(architecture: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in architecture.lines() {
        for span in backtick_spans(line) {
            if METRIC_PREFIXES.iter().any(|p| span.starts_with(p)) {
                out.push(span.to_owned());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Rule 6 (`metric-names`): every series name a string literal mints
/// under the policed namespaces must appear in the `ARCHITECTURE.md`
/// naming table (`documented`, from [`documented_metric_names`]).
/// Literals that are prose (whitespace or `*`) or bare namespace
/// filters (trailing `/`) are not names and are skipped. Token-based:
/// a series name quoted in a comment is not a finding.
pub fn check_metric_names(file: &SourceFile, documented: &[String]) -> Vec<Finding> {
    let mut out = Vec::new();
    for tok in &file.tokens {
        if !tok.kind.is_string() {
            continue;
        }
        let Some(lit) = string_value(tok, &file.content) else {
            continue;
        };
        if !METRIC_PREFIXES.iter().any(|p| lit.starts_with(p)) {
            continue;
        }
        if lit.ends_with('/') || lit.contains('*') || lit.chars().any(char::is_whitespace) {
            continue;
        }
        let candidate = normalize_metric_name(&lit);
        if !documented
            .iter()
            .any(|d| metric_name_matches(d, &candidate))
        {
            out.push(finding(
                &file.path,
                tok.line,
                "metric-names",
                format!(
                    "series name `{lit}` is not in ARCHITECTURE.md's Observability \
                     naming table — document it (as `{candidate}`) before shipping it"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// R7 · lock-order
// ---------------------------------------------------------------------

/// One "lock B acquired while A's guard is live" observation.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Identity of the lock whose guard was live.
    pub from: String,
    /// Identity of the lock acquired under it.
    pub to: String,
    /// Where `from`'s guard was bound.
    pub from_site: (PathBuf, u32),
    /// Where `to` was acquired.
    pub to_site: (PathBuf, u32),
}

struct Guard {
    id: String,
    binding: String,
    depth: i32,
    line: u32,
}

/// Extract per-function lock-acquisition-order edges from one file.
///
/// An *acquisition* is a no-argument `.lock()` / `.read()` / `.write()`
/// call (the empty argument list is what separates lock APIs from
/// `io::Read::read(&mut buf)`-style calls). A `let`-bound acquisition
/// keeps its guard live until the enclosing block closes or an explicit
/// `drop(guard)`; while any guard is live, every further acquisition
/// records an edge. Lock identity is the receiver path, with `self.*`
/// receivers qualified by the enclosing `impl` type
/// (`SimDir::state`), so two types' same-named fields do not alias.
pub fn lock_edges(file: &SourceFile) -> Vec<LockEdge> {
    let src = &file.content;
    let mut edges = Vec::new();
    for item in fn_items(file) {
        let toks: Vec<&Token> = file.tokens[item.body.clone()]
            .iter()
            .filter(|t| !t.kind.is_comment())
            .collect();
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth = 0i32;
        let mut j = 0usize;
        while j < toks.len() {
            let text = toks[j].text(src);
            match text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                "drop" if toks.get(j + 1).is_some_and(|t| t.text(src) == "(") => {
                    if let Some(name) = toks.get(j + 2).map(|t| t.text(src)) {
                        guards.retain(|g| g.binding != name);
                    }
                }
                "." => {
                    if let Some((id, line, binding)) =
                        acquisition_at(&toks, j, src, &item.impl_type)
                    {
                        for g in &guards {
                            edges.push(LockEdge {
                                from: g.id.clone(),
                                to: id.clone(),
                                from_site: (file.path.clone(), g.line),
                                to_site: (file.path.clone(), line),
                            });
                        }
                        if let Some(binding) = binding {
                            guards.push(Guard {
                                id,
                                binding,
                                depth,
                                line,
                            });
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    edges
}

/// Is `toks[j]` (a `.`) the dot of a no-argument lock acquisition?
/// Returns `(lock id, line, let-binding name if bound)`.
fn acquisition_at(
    toks: &[&Token],
    j: usize,
    src: &str,
    impl_type: &Option<String>,
) -> Option<(String, u32, Option<String>)> {
    let m = toks.get(j + 1)?.text(src);
    if !LOCK_METHODS.contains(&m) {
        return None;
    }
    if toks.get(j + 2)?.text(src) != "(" || toks.get(j + 3)?.text(src) != ")" {
        return None;
    }
    // Walk the receiver backwards: idents, `.`, `::` and balanced
    // index brackets.
    let mut parts: Vec<&str> = Vec::new();
    let mut k = j;
    while k > 0 {
        let t = toks[k - 1];
        let text = t.text(src);
        match t.kind {
            TokKind::Ident | TokKind::RawIdent => parts.push(text),
            TokKind::Punct if text == "." || text == ":" => parts.push(text),
            TokKind::Punct if text == "]" => {
                // Skip the whole index expression.
                let mut bal = 1;
                k -= 1;
                while k > 0 && bal > 0 {
                    match toks[k - 1].text(src) {
                        "]" => bal += 1,
                        "[" => bal -= 1,
                        _ => {}
                    }
                    k -= 1;
                }
                continue;
            }
            _ => break,
        }
        k -= 1;
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    let receiver: String = parts.concat();
    // `self.*` receivers are qualified by the impl type so same-named
    // fields of different types never alias.
    let id = match receiver.strip_prefix("self") {
        Some(rest) => {
            let owner = impl_type.as_deref().unwrap_or("?");
            let rest = rest.trim_start_matches('.');
            if rest.is_empty() {
                format!("{owner}::<self>")
            } else {
                format!("{owner}::{rest}")
            }
        }
        None => receiver,
    };
    // Let-binding: `let [mut] name = <receiver>…`.
    let mut b = k; // index of first receiver token
    let binding = (|| {
        if b == 0 || toks[b - 1].text(src) != "=" {
            return None;
        }
        b -= 1;
        let name = toks.get(b.checked_sub(1)?)?;
        if !matches!(name.kind, TokKind::Ident | TokKind::RawIdent) {
            return None;
        }
        let mut l = b - 1;
        if l > 0 && toks[l - 1].text(src) == "mut" {
            l -= 1;
        }
        if l > 0 && toks[l - 1].text(src) == "let" {
            Some(name.text(src).to_string())
        } else {
            None
        }
    })();
    Some((id, toks[j + 1].line, binding))
}

/// Rule 7 (`lock-order`): cycles in the workspace-wide lock-order
/// graph. Every cycle is reported once, naming each edge's two sites —
/// the static complement to `ltree_checked::interleave`'s dynamic
/// schedule exploration.
pub fn lock_cycle_findings(edges: &[LockEdge]) -> Vec<Finding> {
    // Adjacency, deduplicated to the first-seen site pair per (from, to).
    let mut adj: BTreeMap<&str, Vec<(&str, &LockEdge)>> = BTreeMap::new();
    let mut seen_pair = BTreeSet::new();
    for e in edges {
        if seen_pair.insert((e.from.as_str(), e.to.as_str())) {
            adj.entry(&e.from).or_default().push((&e.to, e));
        }
    }

    let mut out = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    // DFS with an explicit path; a back edge into the current path is a
    // cycle. The graph has a handful of nodes, so the simple O(V·E)
    // enumeration is fine.
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        let mut path: Vec<(&str, &LockEdge)> = Vec::new();
        dfs(
            start,
            start,
            &adj,
            &mut path,
            &mut BTreeSet::new(),
            &mut |cycle| {
                let mut key: Vec<String> = cycle.iter().map(|(n, _)| n.to_string()).collect();
                key.sort();
                if !reported.insert(key) {
                    return;
                }
                let mut msg = String::from("lock-order cycle: ");
                for (idx, (node, edge)) in cycle.iter().enumerate() {
                    if idx > 0 {
                        msg.push_str("; ");
                    }
                    msg.push_str(&format!(
                        "`{}` then `{}` (guard bound {}:{}, acquired {}:{})",
                        node,
                        edge.to,
                        edge.from_site.0.display(),
                        edge.from_site.1,
                        edge.to_site.0.display(),
                        edge.to_site.1,
                    ));
                }
                let site = cycle[0].1;
                out.push(Finding {
                    path: site.to_site.0.clone(),
                    line: site.to_site.1 as usize,
                    rule: "lock-order",
                    message: msg,
                });
            },
        );
    }
    out
}

fn dfs<'a>(
    start: &'a str,
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<(&'a str, &'a LockEdge)>>,
    path: &mut Vec<(&'a str, &'a LockEdge)>,
    visited: &mut BTreeSet<&'a str>,
    report: &mut impl FnMut(&[(&'a str, &'a LockEdge)]),
) {
    if !visited.insert(node) {
        return;
    }
    for &(to, edge) in adj.get(node).into_iter().flatten() {
        if to == start {
            path.push((node, edge));
            report(path);
            path.pop();
        } else if !visited.contains(to) {
            path.push((node, edge));
            dfs(start, to, adj, path, visited, report);
            path.pop();
        }
    }
}

// ---------------------------------------------------------------------
// R8 · atomics-audit
// ---------------------------------------------------------------------

const MEMORY_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Rule 8 (`atomics-audit`): every `Ordering::*` use must carry an
/// adjacent why-comment — a non-doc comment on the same line or within
/// the three lines above (doc comments document the API, not the
/// memory-ordering choice, so they do not count). `SeqCst` is
/// deny-by-default: its adjacent comment must carry a `seqcst:` marker
/// justifying why a weaker ordering does not suffice.
pub fn check_atomics(file: &SourceFile) -> Vec<Finding> {
    let src = &file.content;
    // Lines covered by non-doc comments, and their texts for the
    // `seqcst:` marker search.
    let mut comment_lines: BTreeSet<u32> = BTreeSet::new();
    let mut comments: Vec<(u32, u32, &str)> = Vec::new();
    for tok in &file.tokens {
        if !tok.kind.is_comment() || tok.kind.is_doc() {
            continue;
        }
        let text = tok.text(src);
        let last = tok.line + text.matches('\n').count() as u32;
        for l in tok.line..=last {
            comment_lines.insert(l);
        }
        comments.push((tok.line, last, text));
    }

    let code: Vec<&Token> = file.code_tokens().collect();
    let mut out = Vec::new();
    let mut flagged_lines = BTreeSet::new();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokKind::Ident || !tok.text(src).ends_with("Ordering") {
            continue;
        }
        let Some(name) = code.get(i + 3) else {
            continue;
        };
        if code[i + 1].text(src) != ":" || code[i + 2].text(src) != ":" {
            continue;
        }
        let name_text = name.text(src);
        if !MEMORY_ORDERINGS.contains(&name_text) {
            continue;
        }
        let line = name.line;
        if !flagged_lines.insert(line) {
            continue; // one finding per line (compare_exchange has two)
        }
        let window = line.saturating_sub(3)..=line;
        let commented = comment_lines.iter().any(|l| window.contains(l));
        if name_text == "SeqCst" {
            let justified = comments
                .iter()
                .filter(|(first, last, _)| *last >= *window.start() && *first <= line)
                .any(|(_, _, t)| t.to_ascii_lowercase().contains("seqcst:"));
            if !justified {
                out.push(finding(
                    &file.path,
                    line,
                    "atomics-audit",
                    "`Ordering::SeqCst` is deny-by-default — justify it with an adjacent \
                     `// seqcst: …` comment or use the weakest ordering that works"
                        .to_string(),
                ));
                continue;
            }
        }
        if !commented {
            out.push(finding(
                &file.path,
                line,
                "atomics-audit",
                format!(
                    "`Ordering::{name_text}` without an adjacent why-comment — state why \
                     this ordering suffices (same line or the lines directly above)"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// R9 · crate-layering
// ---------------------------------------------------------------------

/// Token-index ranges (into `code`) of `#[cfg(test)] mod … { … }`
/// bodies — unit tests inside `src/` files, which Cargo compiles with
/// dev-dependencies in scope.
fn cfg_test_mod_ranges(code: &[&Token], src: &str) -> Vec<std::ops::Range<usize>> {
    let text = |i: usize| code.get(i).map(|t| t.text(src)).unwrap_or("");
    let mut out = Vec::new();
    let mut i = 0;
    while i + 6 < code.len() {
        let is_cfg_test = text(i) == "#"
            && text(i + 1) == "["
            && text(i + 2) == "cfg"
            && text(i + 3) == "("
            && text(i + 4) == "test"
            && text(i + 5) == ")"
            && text(i + 6) == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip any further attributes between the cfg and the item.
        while text(j) == "#" && text(j + 1) == "[" {
            let mut bal = 0i32;
            j += 1;
            while j < code.len() {
                match text(j) {
                    "[" => bal += 1,
                    "]" => {
                        bal -= 1;
                        if bal == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1;
        }
        if text(j) == "pub" {
            j += 1;
        }
        if text(j) == "mod" {
            // Find the body braces and mark the whole range.
            while j < code.len() && text(j) != "{" && text(j) != ";" {
                j += 1;
            }
            if text(j) == "{" {
                let start = j;
                let mut depth = 0i32;
                while j < code.len() {
                    match text(j) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                out.push(start..j + 1);
            }
        }
        i = j.max(i + 1);
    }
    out
}

/// Rule 9 (`crate-layering`): every `Cargo.toml` dependency edge and
/// every `use`/path-qualified cross-crate reference between workspace
/// crates must be permitted by `ARCHITECTURE.md`'s declared crate
/// graph. Dev contexts (`[dev-dependencies]`, files outside the
/// crate's `src/`, and `#[cfg(test)]` modules inside it) additionally
/// get the graph's dev edges.
pub fn check_layering(ws: &Workspace, graph: &CrateGraph) -> Vec<Finding> {
    let mut out = Vec::new();
    let member_names: BTreeSet<&str> = ws.crates.iter().map(|c| c.name.as_str()).collect();

    // Manifest edges.
    for c in &ws.crates {
        let manifest = if c.dir.is_empty() {
            ws.root.join("Cargo.toml")
        } else {
            ws.root.join(&c.dir).join("Cargo.toml")
        };
        if !graph.declares(&c.name) {
            out.push(finding(
                &manifest,
                0,
                "crate-layering",
                format!(
                    "crate `{}` has no row in ARCHITECTURE.md's [xtask:crate-graph] — \
                     declare its place in the layering before adding code to it",
                    c.name
                ),
            ));
            continue;
        }
        for (deps, dev) in [(&c.deps, false), (&c.dev_deps, true)] {
            for dep in deps.iter().filter(|d| member_names.contains(d.as_str())) {
                if !graph.allows(&c.name, dep, dev) {
                    let line = c.dep_lines.get(dep).copied().unwrap_or(0);
                    out.push(finding(
                        &manifest,
                        line as u32,
                        "crate-layering",
                        format!(
                            "`{}` → `{}`{} is not permitted by ARCHITECTURE.md's \
                             [xtask:crate-graph] — either the layering or the graph is wrong",
                            c.name,
                            dep,
                            if dev { " (dev)" } else { "" }
                        ),
                    ));
                }
            }
        }
    }

    // `use` / path-qualified reference edges.
    let ident_to_pkg: BTreeMap<String, &str> = ws
        .crates
        .iter()
        .map(|c| (c.name.replace('-', "_"), c.name.as_str()))
        .collect();
    for file in &ws.files {
        let Some(owner) = file.crate_name.as_deref() else {
            continue;
        };
        let crate_dir = ws
            .crates
            .iter()
            .find(|c| c.name == owner)
            .map(|c| c.dir.as_str())
            .unwrap_or("");
        let src_prefix = if crate_dir.is_empty() {
            "src/".to_string()
        } else {
            format!("{crate_dir}/src/")
        };
        let file_dev = !file.rel.starts_with(&src_prefix);
        let src = &file.content;
        let code: Vec<&Token> = file.code_tokens().collect();
        let test_mods = if file_dev {
            Vec::new()
        } else {
            cfg_test_mod_ranges(&code, src)
        };
        let mut seen_lines = BTreeSet::new();
        for (i, tok) in code.iter().enumerate() {
            if tok.kind != TokKind::Ident {
                continue;
            }
            let dev = file_dev || test_mods.iter().any(|r| r.contains(&i));
            // Only path-qualified references (`pkg::…`) count: a bare
            // ident is a local name, not a crate edge.
            if code.get(i + 1).map(|t| t.text(src)) != Some(":")
                || code.get(i + 2).map(|t| t.text(src)) != Some(":")
            {
                continue;
            }
            // `foo::pkg::…` — only the leading segment names a crate.
            if i >= 2 && code[i - 1].text(src) == ":" && code[i - 2].text(src) == ":" {
                continue;
            }
            let Some(&pkg) = ident_to_pkg.get(tok.text(src)) else {
                continue;
            };
            if pkg == owner || graph.allows(owner, pkg, dev) {
                continue;
            }
            if seen_lines.insert((tok.line, pkg)) {
                out.push(finding(
                    &file.path,
                    tok.line,
                    "crate-layering",
                    format!(
                        "`{owner}` references `{pkg}` but ARCHITECTURE.md's \
                         [xtask:crate-graph] does not permit that edge{}",
                        if dev { " (dev context)" } else { "" }
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// R10 · wire-tags
// ---------------------------------------------------------------------

/// The `(variant, tag, line)` pairs extracted from `wire.rs`'s encode
/// (`put_error`) and decode (`decode_error`) paths.
#[derive(Debug, Default)]
pub struct WireTagPairs {
    /// From `put_error`: variant → (tag, line).
    pub encode: Vec<(String, u8, u32)>,
    /// From `decode_error`: tag → (variant, line).
    pub decode: Vec<(u8, String, u32)>,
}

/// Extract the wire-tag pairs from a lexed `wire.rs`. Returns `None`
/// when either function is missing (the caller reports that as its own
/// finding).
pub fn wire_tag_pairs(file: &SourceFile) -> Option<WireTagPairs> {
    let src = &file.content;
    let items = fn_items(file);
    let body_tokens = |name: &str| -> Option<Vec<&Token>> {
        let item = items.iter().find(|i| i.name == name)?;
        Some(
            file.tokens[item.body.clone()]
                .iter()
                .filter(|t| !t.kind.is_comment())
                .collect(),
        )
    };
    let enc = body_tokens("put_error")?;
    let dec = body_tokens("decode_error")?;
    let mut pairs = WireTagPairs::default();

    // Encode: a `LTreeError::Variant` match arm followed (before the
    // next variant) by its first `put_u8(_, N)` literal.
    let mut current: Option<(String, u32)> = None;
    let mut i = 0;
    while i < enc.len() {
        let t = enc[i].text(src);
        if t == "LTreeError"
            && enc.get(i + 1).map(|t| t.text(src)) == Some(":")
            && enc.get(i + 2).map(|t| t.text(src)) == Some(":")
        {
            if let Some(v) = enc.get(i + 3) {
                current = Some((v.text(src).to_string(), v.line));
                i += 4;
                continue;
            }
        }
        if t == "put_u8" {
            // `put_u8(b, N)` — second argument must be a numeric
            // literal to count as the tag byte.
            if enc.get(i + 1).map(|t| t.text(src)) == Some("(")
                && enc.get(i + 3).map(|t| t.text(src)) == Some(",")
                && enc.get(i + 4).map(|t| t.kind) == Some(TokKind::Num)
            {
                if let Some((variant, line)) = current.take() {
                    if let Ok(tag) = enc[i + 4].text(src).parse::<u8>() {
                        pairs.encode.push((variant, tag, line));
                    }
                }
            }
        }
        i += 1;
    }

    // Decode: `N => LTreeError::Variant` match arms.
    for i in 0..dec.len() {
        if dec[i].kind != TokKind::Num {
            continue;
        }
        if dec.get(i + 1).map(|t| t.text(src)) != Some("=")
            || dec.get(i + 2).map(|t| t.text(src)) != Some(">")
        {
            continue;
        }
        if dec.get(i + 3).map(|t| t.text(src)) != Some("LTreeError")
            || dec.get(i + 4).map(|t| t.text(src)) != Some(":")
            || dec.get(i + 5).map(|t| t.text(src)) != Some(":")
        {
            continue;
        }
        let (Ok(tag), Some(v)) = (dec[i].text(src).parse::<u8>(), dec.get(i + 6)) else {
            continue;
        };
        pairs.decode.push((tag, v.text(src).to_string(), v.line));
    }
    Some(pairs)
}

/// Extract the variant names of `pub enum LTreeError` from a lexed
/// `error.rs` (idents at brace depth 1, paren depth 0, attributes
/// skipped).
pub fn error_enum_variants(file: &SourceFile) -> Vec<String> {
    let src = &file.content;
    let code: Vec<&Token> = file.code_tokens().collect();
    let mut start = None;
    for i in 0..code.len() {
        if code[i].text(src) == "enum" && code.get(i + 1).map(|t| t.text(src)) == Some("LTreeError")
        {
            start = Some(i + 2);
            break;
        }
    }
    let Some(mut i) = start else {
        return Vec::new();
    };
    // Skip to the opening brace.
    while i < code.len() && code[i].text(src) != "{" {
        i += 1;
    }
    let mut variants = Vec::new();
    let mut brace = 0i32;
    let mut paren = 0i32;
    while i < code.len() {
        let t = code[i].text(src);
        match t {
            "{" => brace += 1,
            "}" => {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            }
            "(" => paren += 1,
            ")" => paren -= 1,
            "#" if code.get(i + 1).map(|t| t.text(src)) == Some("[") => {
                // Skip the attribute.
                let mut bal = 0i32;
                i += 1;
                while i < code.len() {
                    match code[i].text(src) {
                        "[" => bal += 1,
                        "]" => {
                            bal -= 1;
                            if bal == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => {
                if brace == 1
                    && paren == 0
                    && code[i].kind == TokKind::Ident
                    && code
                        .get(i + 1)
                        .map(|t| matches!(t.text(src), "," | "{" | "(" | "}" | "="))
                        .unwrap_or(false)
                {
                    variants.push(t.to_string());
                }
            }
        }
        i += 1;
    }
    variants
}

/// Rule 10 (`wire-tags`): the `LTreeError`-variant ↔ wire-tag mapping
/// must be unique, must agree between the encode and decode paths, must
/// cover every enum variant (minus the documented canonicalized set),
/// and must match `ARCHITECTURE.md`'s `[xtask:wire-error-tags]` table.
pub fn check_wire_tags(
    wire: &SourceFile,
    error_enum: Option<&SourceFile>,
    table: &WireTagTable,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(pairs) = wire_tag_pairs(wire) else {
        out.push(finding(
            &wire.path,
            0,
            "wire-tags",
            "could not locate `put_error` / `decode_error` — the wire-tag rule has \
             lost its anchor; update rules.rs alongside the codec refactor"
                .to_string(),
        ));
        return out;
    };

    let mut enc_by_tag: BTreeMap<u8, &str> = BTreeMap::new();
    let mut enc_by_variant: BTreeMap<&str, u8> = BTreeMap::new();
    for (v, t, line) in &pairs.encode {
        if let Some(prev) = enc_by_tag.insert(*t, v) {
            out.push(finding(
                &wire.path,
                *line,
                "wire-tags",
                format!("encode assigns tag {t} to both `{prev}` and `{v}`"),
            ));
        }
        if enc_by_variant.insert(v, *t).is_some() {
            out.push(finding(
                &wire.path,
                *line,
                "wire-tags",
                format!("encode assigns `{v}` more than one tag"),
            ));
        }
    }
    let mut dec_by_tag: BTreeMap<u8, &str> = BTreeMap::new();
    for (t, v, line) in &pairs.decode {
        if dec_by_tag.insert(*t, v).is_some() {
            out.push(finding(
                &wire.path,
                *line,
                "wire-tags",
                format!("decode matches tag {t} twice"),
            ));
        }
    }

    // Encode ↔ decode agreement, both directions.
    for (v, t, line) in &pairs.encode {
        match dec_by_tag.get(t) {
            Some(dv) if *dv == v => {}
            Some(dv) => out.push(finding(
                &wire.path,
                *line,
                "wire-tags",
                format!("tag {t} encodes `{v}` but decodes `{dv}`"),
            )),
            None => out.push(finding(
                &wire.path,
                *line,
                "wire-tags",
                format!("tag {t} (`{v}`) is encoded but never decoded"),
            )),
        }
    }
    for (t, v, line) in &pairs.decode {
        if !enc_by_tag.contains_key(t) {
            out.push(finding(
                &wire.path,
                *line,
                "wire-tags",
                format!("tag {t} (`{v}`) is decoded but never encoded"),
            ));
        }
    }

    // Agreement with the architecture table.
    for (t, v) in &table.tags {
        match enc_by_tag.get(t) {
            Some(ev) if *ev == v => {}
            Some(ev) => out.push(finding(
                &wire.path,
                0,
                "wire-tags",
                format!("ARCHITECTURE.md documents tag {t} as `{v}` but wire.rs encodes `{ev}`"),
            )),
            None => out.push(finding(
                &wire.path,
                0,
                "wire-tags",
                format!("ARCHITECTURE.md documents tag {t} (`{v}`) but wire.rs never encodes it"),
            )),
        }
    }
    for (v, t, _) in &pairs.encode {
        if table.tags.get(t).map(String::as_str) != Some(v.as_str())
            && !table.tags.values().any(|tv| tv == v)
        {
            out.push(finding(
                &wire.path,
                0,
                "wire-tags",
                format!(
                    "wire.rs encodes `{v}` (tag {t}) but ARCHITECTURE.md's \
                     [xtask:wire-error-tags] does not document it"
                ),
            ));
        }
    }

    // Exhaustiveness against the enum itself.
    if let Some(e) = error_enum {
        for v in error_enum_variants(e) {
            let tagged = enc_by_variant.contains_key(v.as_str());
            let canonicalized = table.canonicalized.contains(&v);
            if !tagged && !canonicalized {
                out.push(finding(
                    &wire.path,
                    0,
                    "wire-tags",
                    format!(
                        "`LTreeError::{v}` has no wire tag and is not in the documented \
                         canonicalized set — it cannot travel the wire losslessly"
                    ),
                ));
            }
            if tagged && canonicalized {
                out.push(finding(
                    &wire.path,
                    0,
                    "wire-tags",
                    format!(
                        "`LTreeError::{v}` is both tagged and documented as canonicalized — \
                         pick one"
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(content: &str) -> SourceFile {
        SourceFile {
            path: PathBuf::from("mem.rs"),
            rel: "mem.rs".into(),
            crate_name: None,
            in_tests: true,
            content: content.to_string(),
            tokens: lex(content),
        }
    }

    #[test]
    fn backtick_spans_are_extracted() {
        assert_eq!(
            backtick_spans("use `ltree(4,2)` or `gap` here"),
            vec!["ltree(4,2)", "gap"]
        );
        assert_eq!(backtick_spans("``` fenced"), Vec::<&str>::new());
    }

    #[test]
    fn metric_names_normalize_and_match_family_rows() {
        assert_eq!(normalize_metric_name("net/conn{}"), "net/conn<i>");
        assert_eq!(
            normalize_metric_name("net/conn17/round-trips"),
            "net/conn<i>/round-trips"
        );
        assert_eq!(normalize_metric_name("net/requests"), "net/requests");

        let row = "net/conn<i>/round-trips";
        assert!(metric_name_matches(row, "net/conn<i>/round-trips"));
        assert!(metric_name_matches(row, "net/conn<i>"));
        assert!(metric_name_matches(row, "net/conn"), "prefix filters");
        assert!(metric_name_matches("net/phase/decode", "net/phase/<i>"));
        assert!(!metric_name_matches("net/requests", "net/round-trips"));
    }

    #[test]
    fn spec_shapes_are_recognized() {
        assert_eq!(spec_shaped("ltree(4,2)"), Some("ltree"));
        assert_eq!(spec_shaped("list-label(32)"), Some("list-label"));
        assert_eq!(spec_shaped("sharded(2,checked(gap))"), Some("sharded"));
        assert_eq!(spec_shaped("Params::new(4, 2)"), None);
        assert_eq!(spec_shaped("insert_after(anchor)"), None);
        assert_eq!(spec_shaped("gap"), None);
    }

    #[test]
    fn lock_edges_track_guards_scopes_and_drops() {
        let f = file(
            "fn two(a: &M, b: &M) {\n\
             let ga = a.lock();\n\
             let gb = b.lock();\n\
             drop(gb);\n\
             }\n\
             fn scoped(a: &M, c: &M) {\n\
             { let ga = a.lock(); }\n\
             let gc = c.lock();\n\
             }\n",
        );
        let edges = lock_edges(&f);
        let pairs: Vec<(String, String)> = edges
            .iter()
            .map(|e| (e.from.clone(), e.to.clone()))
            .collect();
        assert_eq!(pairs, vec![("a".to_string(), "b".to_string())]);
        assert_eq!(edges[0].from_site.1, 2);
        assert_eq!(edges[0].to_site.1, 3);
    }

    #[test]
    fn self_receivers_are_qualified_by_impl_type() {
        let f = file(
            "impl Server {\n\
             fn go(&self) { let g = self.state.lock(); let h = self.slots[0].lock(); }\n\
             }\n",
        );
        let edges = lock_edges(&f);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].from, "Server::state");
        assert_eq!(edges[0].to, "Server::slots");
    }

    #[test]
    fn io_read_calls_are_not_acquisitions() {
        let f =
            file("fn go(s: &mut TcpStream, buf: &mut [u8]) { let g = m.lock(); s.read(buf); }\n");
        assert!(lock_edges(&f).is_empty(), "read(buf) takes an argument");
    }

    #[test]
    fn lock_cycles_are_reported_once_with_both_sites() {
        let f = file(
            "fn ab(a: &M, b: &M) { let ga = a.lock(); let gb = b.lock(); }\n\
             fn ba(a: &M, b: &M) { let gb = b.lock(); let ga = a.lock(); }\n",
        );
        let findings = lock_cycle_findings(&lock_edges(&f));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "lock-order");
        assert!(findings[0].message.contains("`a` then `b`"));
        assert!(findings[0].message.contains("`b` then `a`"));
    }

    #[test]
    fn atomics_need_nearby_nondoc_comments() {
        let bare = file("fn f(x: &AtomicU64) { x.load(Ordering::Relaxed); }\n");
        assert_eq!(check_atomics(&bare).len(), 1);

        let commented =
            file("fn f(x: &AtomicU64) {\n// counter, no ordering needed\nx.load(Ordering::Relaxed);\n}\n");
        assert!(check_atomics(&commented).is_empty());

        let doc_only =
            file("/// Relaxed is fine here.\nfn f(x: &AtomicU64) { x.load(Ordering::Relaxed); }\n");
        assert_eq!(
            check_atomics(&doc_only).len(),
            1,
            "doc comments do not count"
        );

        let cmp = file("fn f() { if a.cmp(&b) == std::cmp::Ordering::Less {} }\n");
        assert!(
            check_atomics(&cmp).is_empty(),
            "cmp::Ordering is not a memory order"
        );
    }

    #[test]
    fn seqcst_requires_a_marker_justification() {
        let plain =
            file("fn f(x: &AtomicU64) {\n// total order needed\nx.load(Ordering::SeqCst);\n}\n");
        let found = check_atomics(&plain);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("deny-by-default"));

        let justified = file(
            "fn f(x: &AtomicU64) {\n// seqcst: single total order across both flags\nx.load(Ordering::SeqCst);\n}\n",
        );
        assert!(check_atomics(&justified).is_empty());
    }

    #[test]
    fn wire_pairs_extract_encode_and_decode() {
        let f = file(
            "fn put_error(b: &mut Vec<u8>, e: &LTreeError) {\n\
             match e {\n\
             LTreeError::UnknownHandle { handle } => { put_u8(b, 0); put_u64(b, *handle); }\n\
             LTreeError::LabelOverflow { height } => { put_u8(b, 5); put_u8(b, *height as u8); }\n\
             }\n\
             }\n\
             fn decode_error(buf: &[u8]) -> LTreeError {\n\
             match tag {\n\
             0 => LTreeError::UnknownHandle { handle },\n\
             5 => LTreeError::LabelOverflow { height },\n\
             _ => unreachable!(),\n\
             }\n\
             }\n",
        );
        let pairs = wire_tag_pairs(&f).unwrap();
        assert_eq!(
            pairs
                .encode
                .iter()
                .map(|(v, t, _)| (v.as_str(), *t))
                .collect::<Vec<_>>(),
            vec![("UnknownHandle", 0), ("LabelOverflow", 5)],
            "only the first numeric put_u8 after each variant counts"
        );
        assert_eq!(
            pairs
                .decode
                .iter()
                .map(|(t, v, _)| (*t, v.as_str()))
                .collect::<Vec<_>>(),
            vec![(0, "UnknownHandle"), (5, "LabelOverflow")]
        );
    }

    #[test]
    fn error_enum_variants_skip_fields_and_attrs() {
        let f = file(
            "/// Errors.\n\
             #[derive(Debug)]\n\
             pub enum LTreeError {\n\
             #[allow(dead_code)]\n\
             UnknownHandle { handle: u64 },\n\
             EmptyTree,\n\
             Remote { message: String },\n\
             }\n",
        );
        assert_eq!(
            error_enum_variants(&f),
            vec!["UnknownHandle", "EmptyTree", "Remote"]
        );
    }
}
