//! # `xtask` — workspace lint rules clippy cannot express
//!
//! A dependency-free, syntax-level checker for repo conventions, run in
//! CI (and locally) as `cargo xtask lint`. Six rules:
//!
//! 1. **`crate-attrs`** — every crate's `lib.rs` carries
//!    `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
//! 2. **`fixed-port`** — integration tests never bind or dial a fixed
//!    TCP port (`127.0.0.1:7878`-style); only `:0` (OS-assigned) is
//!    allowed, so parallel test runs cannot collide.
//! 3. **`lock-unwrap`** — no unwrapping of `lock()`/`read()`/`write()`
//!    results anywhere; the repo idiom is poison-tolerant recovery
//!    (`unwrap_or_else(|p| p.into_inner())`), because a panicked
//!    connection thread must not cascade into every later lock site.
//! 4. **`spec-grammar`** — backtick-quoted registry spec strings in
//!    rustdoc, `ARCHITECTURE.md` and README files (any `` `name(...)` ``
//!    whose top-level name is a registered scheme) must parse against
//!    the live grammar via
//!    [`validate_spec`](ltree::SchemeRegistry::validate_spec), so docs
//!    cannot drift from the registry.
//! 5. **`fixed-path`** — integration tests never hard-code an absolute
//!    filesystem path in a string literal; durable-store tests get
//!    their on-disk space from `ltree::remote::scratch_dir` (or
//!    `std::env::temp_dir()`), so parallel runs and sandboxed CI cannot
//!    collide on shared paths.
//! 6. **`metric-names`** — every breakdown/metric series name the
//!    workspace mints (a string literal under the `net/`, `wal/`,
//!    `audit/` or `obs/` namespaces) must appear in `ARCHITECTURE.md`'s
//!    Observability naming table, so a new series cannot ship
//!    undocumented. Format placeholders and literal indices normalize
//!    to `<i>` before the lookup, matching the table's
//!    `net/conn<i>/round-trips`-style family rows.
//!
//! The rules are plain functions over `(path, content)` so the test
//! suite can point them at seeded-violation fixtures under
//! `tests/fixtures/` (which the workspace walker skips).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ltree::SchemeRegistry;

/// One rule violation: file, 1-based line, rule id and message.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Rule identifier (`crate-attrs`, `fixed-port`, `lock-unwrap`,
    /// `spec-grammar`, `fixed-path`, `metric-names`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Rule 1: a crate root must carry both lint attributes.
pub fn check_crate_attrs(path: &Path, content: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for attr in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
        if !content.lines().any(|l| l.trim() == attr) {
            out.push(Finding {
                path: path.to_path_buf(),
                line: 0,
                rule: "crate-attrs",
                message: format!("crate root is missing `{attr}`"),
            });
        }
    }
    out
}

/// Rule 2: no fixed TCP ports in test code. Flags `127.0.0.1:<port>`
/// and `localhost:<port>` for any literal port other than `0`.
pub fn check_fixed_ports(path: &Path, content: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in content.lines().enumerate() {
        for host in ["127.0.0.1:", "localhost:"] {
            let mut rest = line;
            let mut col = 0;
            while let Some(pos) = rest.find(host) {
                let after = &rest[pos + host.len()..];
                let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
                if !digits.is_empty() && digits != "0" {
                    out.push(Finding {
                        path: path.to_path_buf(),
                        line: idx + 1,
                        rule: "fixed-port",
                        message: format!(
                            "fixed port `{host}{digits}` in a test — bind `:0` and pass \
                             the OS-assigned address around instead"
                        ),
                    });
                }
                col += pos + host.len();
                rest = &rest[pos + host.len()..];
                let _ = col;
            }
        }
    }
    out
}

/// Rule 3: no `unwrap()` on lock results; poisoning must be recovered
/// with `unwrap_or_else(|p| p.into_inner())` (the repo-wide idiom).
pub fn check_lock_unwrap(path: &Path, content: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    // Assembled at runtime so the linter's own source does not contain
    // the literal it hunts for.
    let pats: Vec<String> = ["lock", "read", "write"]
        .iter()
        .map(|m| format!(".{m}().unwrap()"))
        .collect();
    for (idx, line) in content.lines().enumerate() {
        for pat in &pats {
            if line.contains(pat.as_str()) {
                out.push(Finding {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    rule: "lock-unwrap",
                    message: format!(
                        "`{pat}` propagates lock poisoning — use \
                         `unwrap_or_else(|p| p.into_inner())`"
                    ),
                });
            }
        }
    }
    out
}

/// Rule 5: no fixed absolute paths in test string literals. Flags a
/// string literal opening straight into `/tmp/`, `/var/`, `/home/` or a
/// Windows drive root — tests must derive scratch space at runtime
/// (`ltree::remote::scratch_dir` / `std::env::temp_dir()`) so parallel
/// runs never collide.
pub fn check_fixed_paths(path: &Path, content: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    // Assembled at runtime so the linter's own source (and its tests)
    // does not contain the literals it hunts for.
    let mut pats: Vec<String> = ["tmp", "var", "home"]
        .iter()
        .map(|d| format!("\"/{d}/"))
        .collect();
    pats.push(format!("\"C:{}", '\\'));
    for (idx, line) in content.lines().enumerate() {
        for pat in &pats {
            if let Some(pos) = line.find(pat.as_str()) {
                let tail: String = line[pos + 1..].chars().take_while(|&c| c != '"').collect();
                out.push(Finding {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    rule: "fixed-path",
                    message: format!(
                        "fixed filesystem path `{tail}` in a test — derive scratch space \
                         at runtime (`ltree::remote::scratch_dir` or `std::env::temp_dir()`) \
                         so parallel runs cannot collide"
                    ),
                });
            }
        }
    }
    out
}

/// Extract every backtick span from one line. Ignores multi-backtick
/// fences (``` and longer).
fn backtick_spans(line: &str) -> Vec<&str> {
    let mut spans = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        if after.starts_with('`') {
            // A fence or empty span: skip the run of backticks.
            let run = after.chars().take_while(|&c| c == '`').count();
            rest = &after[run..];
            continue;
        }
        let Some(close) = after.find('`') else { break };
        spans.push(&after[..close]);
        rest = &after[close + 1..];
    }
    spans
}

/// Does this span look like a registry spec (`name(args)` over the
/// whole span, scheme-name charset) as opposed to arbitrary quoted
/// code? Returns the top-level name when it does.
fn spec_shaped(span: &str) -> Option<&str> {
    let open = span.find('(')?;
    if !span.ends_with(')') {
        return None;
    }
    let name = &span[..open];
    let mut chars = name.chars();
    let first = chars.next()?;
    if !first.is_ascii_lowercase() {
        return None;
    }
    if !chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-') {
        return None;
    }
    Some(name)
}

/// Rule 4: backtick-quoted spec strings whose top-level name is a
/// registered scheme must pass [`SchemeRegistry::validate_spec`].
/// `markdown` restricts the scan to doc comments for `.rs` files and
/// takes every line for `.md` files.
pub fn check_spec_strings(
    path: &Path,
    content: &str,
    reg: &SchemeRegistry,
    markdown: bool,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (idx, raw) in content.lines().enumerate() {
        let line = if markdown {
            if raw.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            raw
        } else {
            let t = raw.trim_start();
            if let Some(doc) = t.strip_prefix("///").or_else(|| t.strip_prefix("//!")) {
                doc
            } else {
                continue;
            }
        };
        for span in backtick_spans(line) {
            let Some(name) = spec_shaped(span) else {
                continue;
            };
            if !reg.contains(name) {
                continue;
            }
            // Doc grammar templates use `[...]` for optional parts and
            // `…`/`...` or capitalized metavariables for placeholders;
            // strip the optional markers and skip spans that still hold
            // placeholder characters rather than a concrete spec.
            let concrete = span.replace(['[', ']'], "");
            if concrete.contains('…')
                || concrete.contains("...")
                || concrete.chars().any(|c| c.is_ascii_uppercase())
            {
                continue;
            }
            if let Err(e) = reg.validate_spec(&concrete) {
                out.push(Finding {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    rule: "spec-grammar",
                    message: format!("quoted spec `{span}` does not parse: {e}"),
                });
            }
        }
    }
    out
}

/// The metric/breakdown namespaces rule 6 polices. Assembled at runtime
/// so the linter's own prefix list is not itself a candidate.
fn metric_prefixes() -> Vec<String> {
    ["net", "wal", "audit", "obs"]
        .iter()
        .map(|p| format!("{p}/"))
        .collect()
}

/// Every complete (non-escaped) `"…"` string literal on one line.
fn string_literals(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur: Option<String> = None;
    let mut escape = false;
    for c in line.chars() {
        match cur.as_mut() {
            Some(s) => {
                if escape {
                    escape = false;
                    s.push(c);
                } else if c == '\\' {
                    escape = true;
                } else if c == '"' {
                    out.push(cur.take().expect("checked via as_mut"));
                } else {
                    s.push(c);
                }
            }
            None => {
                if c == '"' {
                    cur = Some(String::new());
                }
            }
        }
    }
    out
}

/// Canonical form of a series name for the naming-table lookup: format
/// placeholders (`{…}`) and literal digit runs both become `<i>`, so
/// `net/conn{}` in a `format!` and `net/conn0/round-trips` in a test
/// both resolve to the table's `net/conn<i>…` family row.
fn normalize_metric_name(name: &str) -> String {
    let mut out = String::new();
    let mut chars = name.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '{' {
            for n in chars.by_ref() {
                if n == '}' {
                    break;
                }
            }
            out.push_str("<i>");
        } else if c.is_ascii_digit() {
            while chars.peek().is_some_and(char::is_ascii_digit) {
                chars.next();
            }
            out.push_str("<i>");
        } else {
            out.push(c);
        }
    }
    out
}

/// Does a documented naming-table entry cover a normalized candidate?
/// `<i>` in the candidate matches any non-`/` run in the entry, and an
/// entry extending past the candidate still counts — prefix literals
/// (`starts_with("net/conn")` filters) are covered by the family rows
/// they select.
fn metric_name_matches(entry: &str, candidate: &str) -> bool {
    if let Some(pos) = candidate.find("<i>") {
        let (head, rest) = (&candidate[..pos], &candidate[pos + 3..]);
        let Some(tail) = entry.strip_prefix(head) else {
            return false;
        };
        let limit = tail.find('/').unwrap_or(tail.len());
        (0..=limit).any(|k| metric_name_matches(&tail[k..], rest))
    } else {
        entry.starts_with(candidate)
    }
}

/// The series names `ARCHITECTURE.md` documents: every backtick-quoted
/// span under a policed namespace, wherever it appears in the file (the
/// Observability naming table in practice).
pub fn documented_metric_names(architecture: &str) -> Vec<String> {
    let prefixes = metric_prefixes();
    let mut out = Vec::new();
    for line in architecture.lines() {
        for span in backtick_spans(line) {
            if prefixes.iter().any(|p| span.starts_with(p.as_str())) {
                out.push(span.to_owned());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Rule 6: every series name a string literal mints under the policed
/// namespaces must appear in the `ARCHITECTURE.md` naming table
/// (`documented`, from [`documented_metric_names`]). Literals that are
/// prose (whitespace or `*`) or bare namespace filters (trailing `/`)
/// are not names and are skipped.
pub fn check_metric_names(path: &Path, content: &str, documented: &[String]) -> Vec<Finding> {
    let prefixes = metric_prefixes();
    let mut out = Vec::new();
    for (idx, line) in content.lines().enumerate() {
        for lit in string_literals(line) {
            if !prefixes.iter().any(|p| lit.starts_with(p.as_str())) {
                continue;
            }
            if lit.ends_with('/') || lit.contains('*') || lit.chars().any(char::is_whitespace) {
                continue;
            }
            let candidate = normalize_metric_name(&lit);
            if !documented
                .iter()
                .any(|d| metric_name_matches(d, &candidate))
            {
                out.push(Finding {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    rule: "metric-names",
                    message: format!(
                        "series name `{lit}` is not in ARCHITECTURE.md's Observability \
                         naming table — document it (as `{candidate}`) before shipping it"
                    ),
                });
            }
        }
    }
    out
}

/// Is this a path component the walker should never descend into?
fn skipped_dir(name: &str) -> bool {
    name == "target" || name == "fixtures" || name.starts_with('.')
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if !skipped_dir(&name) {
                walk(&path, out)?;
            }
        } else {
            out.push(path);
        }
    }
    Ok(())
}

/// Is `path` inside a directory literally named `tests`?
fn in_tests_dir(path: &Path) -> bool {
    path.components()
        .any(|c| c.as_os_str().to_string_lossy() == "tests")
}

/// Run every rule over the workspace rooted at `root`. The walker skips
/// `target/`, dot-directories and `fixtures/` directories (the seeded
/// violations for the lint's own tests live there).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let reg = ltree::default_registry();
    let mut findings = Vec::new();

    // Rule 6 checks every minted series name against the architecture
    // doc's naming table; a missing doc means nothing is documented.
    let documented = fs::read_to_string(root.join("ARCHITECTURE.md"))
        .map(|text| documented_metric_names(&text))
        .unwrap_or_default();

    // Rule 1 runs over the known crate roots, so a crate *missing* its
    // lib.rs attributes is caught even though the content scan below
    // can only flag what exists.
    let mut crate_roots = vec![root.join("src/lib.rs")];
    for entry in fs::read_dir(root.join("crates"))? {
        let lib = entry?.path().join("src/lib.rs");
        if lib.exists() {
            crate_roots.push(lib);
        }
    }
    for lib in crate_roots {
        let content = fs::read_to_string(&lib)?;
        findings.extend(check_crate_attrs(&lib, &content));
    }

    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    for path in files {
        let ext = path.extension().and_then(|e| e.to_str());
        match ext {
            Some("rs") => {
                let content = fs::read_to_string(&path)?;
                findings.extend(check_lock_unwrap(&path, &content));
                if in_tests_dir(&path) {
                    findings.extend(check_fixed_ports(&path, &content));
                    findings.extend(check_fixed_paths(&path, &content));
                }
                findings.extend(check_spec_strings(&path, &content, &reg, false));
                findings.extend(check_metric_names(&path, &content, &documented));
            }
            Some("md") => {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name == "ARCHITECTURE.md" || name == "README.md" {
                    let content = fs::read_to_string(&path)?;
                    findings.extend(check_spec_strings(&path, &content, &reg, true));
                }
            }
            _ => {}
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backtick_spans_are_extracted() {
        assert_eq!(
            backtick_spans("use `ltree(4,2)` or `gap` here"),
            vec!["ltree(4,2)", "gap"]
        );
        assert_eq!(backtick_spans("``` fenced"), Vec::<&str>::new());
    }

    #[test]
    fn metric_names_normalize_and_match_family_rows() {
        assert_eq!(normalize_metric_name("net/conn{}"), "net/conn<i>");
        assert_eq!(
            normalize_metric_name("net/conn17/round-trips"),
            "net/conn<i>/round-trips"
        );
        assert_eq!(normalize_metric_name("net/requests"), "net/requests");

        let row = "net/conn<i>/round-trips";
        assert!(metric_name_matches(row, "net/conn<i>/round-trips"));
        assert!(metric_name_matches(row, "net/conn<i>"));
        assert!(metric_name_matches(row, "net/conn"), "prefix filters");
        assert!(metric_name_matches("net/phase/decode", "net/phase/<i>"));
        assert!(!metric_name_matches("net/requests", "net/round-trips"));
    }

    #[test]
    fn spec_shapes_are_recognized() {
        assert_eq!(spec_shaped("ltree(4,2)"), Some("ltree"));
        assert_eq!(spec_shaped("list-label(32)"), Some("list-label"));
        assert_eq!(spec_shaped("sharded(2,checked(gap))"), Some("sharded"));
        assert_eq!(spec_shaped("Params::new(4, 2)"), None);
        assert_eq!(spec_shaped("insert_after(anchor)"), None);
        assert_eq!(spec_shaped("gap"), None);
    }
}
