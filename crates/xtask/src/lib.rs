//! # `xtask` — workspace lint rules clippy cannot express
//!
//! A dependency-free semantic checker for repo conventions, run in CI
//! (and locally) as `cargo xtask lint`. Where the first generation of
//! this linter substring-matched raw lines, the current one is founded
//! on a real model: [`lexer`] is a total, dependency-free Rust lexer
//! (raw strings, nested block comments, lifetimes vs char literals,
//! doc-comment classification), [`model`] reads and lexes every
//! workspace source file exactly once and locates fn items and crate
//! manifests, and [`archdoc`] parses the machine-read sections of
//! `ARCHITECTURE.md`. The rules in [`rules`] query that model, which
//! is why they can see scopes and cross-file structure — and why
//! string literals and comments can no longer produce false positives
//! for the token-based rules.
//!
//! Ten rules (ids in parentheses):
//!
//! 1. (`crate-attrs`) every crate root carries `#![forbid(unsafe_code)]`
//!    and `#![deny(missing_docs)]`.
//! 2. (`fixed-port`) test string literals never name a fixed TCP port —
//!    only `:0` (OS-assigned).
//! 3. (`lock-unwrap`) no `.lock().unwrap()` (or `read`/`write`) — the
//!    repo idiom is poison-tolerant `unwrap_or_else(|p| p.into_inner())`.
//! 4. (`spec-grammar`) backtick-quoted registry specs in rustdoc and
//!    markdown must parse against the live grammar.
//! 5. (`fixed-path`) test string literals never hard-code an absolute
//!    filesystem path; scratch space is derived at runtime.
//! 6. (`metric-names`) every minted metric series name must appear in
//!    `ARCHITECTURE.md`'s Observability naming table.
//! 7. (`lock-order`) no cycles in the workspace-wide "lock B acquired
//!    while A's guard is live" graph — static deadlock detection.
//! 8. (`atomics-audit`) every `Ordering::*` use carries an adjacent
//!    why-comment; `SeqCst` additionally needs a `// seqcst: …`
//!    justification.
//! 9. (`crate-layering`) every cross-crate `Cargo.toml`/`use` edge must
//!    be permitted by `ARCHITECTURE.md`'s `[xtask:crate-graph]`.
//! 10. (`wire-tags`) the error-variant ↔ wire-tag table extracted from
//!     `wire.rs` must be unique, exhaustive, encode/decode-consistent
//!     and agree with `ARCHITECTURE.md`'s `[xtask:wire-error-tags]`.
//!
//! A file can opt out of one rule with a justified escape hatch:
//! `// xtask-allow: <rule-id> — <why this file is exempt>`. A missing
//! or trivial justification, or an unknown rule id, is itself a
//! finding (`xtask-allow`).
//!
//! The rules are plain functions over model types so the test suite can
//! point them at seeded-violation fixtures under `tests/fixtures/`
//! (which the workspace walker skips).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod archdoc;
pub mod lexer;
pub mod model;
pub mod rules;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use model::{SourceFile, Workspace};
pub use rules::*;

/// Every rule id `lint` can emit, in rule-number order (the final
/// `xtask-allow` entry is the meta-rule policing the escape hatch
/// itself).
pub const RULE_IDS: [&str; 11] = [
    "crate-attrs",
    "fixed-port",
    "lock-unwrap",
    "spec-grammar",
    "fixed-path",
    "metric-names",
    "lock-order",
    "atomics-audit",
    "crate-layering",
    "wire-tags",
    "xtask-allow",
];

/// One rule violation: file, 1-based line, rule id and message.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Rule identifier (one of [`RULE_IDS`]).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Scan one file's comments for `xtask-allow: <rule-id> — <why>`
/// escape hatches. Returns the rule ids this file may suppress, plus
/// findings for malformed hatches (unknown rule id, missing or trivial
/// justification).
pub fn file_allows(file: &SourceFile) -> (BTreeSet<&'static str>, Vec<Finding>) {
    const MARKER: &str = "xtask-allow:";
    let mut allowed = BTreeSet::new();
    let mut findings = Vec::new();
    for tok in &file.tokens {
        // The hatch must be a plain comment: rustdoc *describing* the
        // mechanism (like this crate's own docs) is not an opt-out.
        if !tok.kind.is_comment() || tok.kind.is_doc() {
            continue;
        }
        let text = tok.text(&file.content);
        for (off, line) in text.lines().enumerate() {
            let Some(pos) = line.find(MARKER) else {
                continue;
            };
            let at = tok.line as usize + off;
            let rest = line[pos + MARKER.len()..].trim_start();
            let id = rest.split(|c: char| c.is_whitespace()).next().unwrap_or("");
            let Some(&known) = RULE_IDS.iter().find(|&&r| r == id) else {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: at,
                    rule: "xtask-allow",
                    message: format!(
                        "`xtask-allow: {id}` names no known rule (known ids: {})",
                        RULE_IDS.join(", ")
                    ),
                });
                continue;
            };
            // The justification is whatever follows the id, minus
            // leading separator punctuation. Ten characters is the
            // floor that forces an actual sentence.
            let why = rest[id.len()..]
                .trim_start_matches(|c: char| {
                    c.is_whitespace() || c == '-' || c == '—' || c == '–' || c == ':'
                })
                .trim();
            if why.len() < 10 {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: at,
                    rule: "xtask-allow",
                    message: format!(
                        "`xtask-allow: {id}` has no justification — say why this file \
                         is exempt (`xtask-allow: {id} — <reason>`)"
                    ),
                });
                continue;
            }
            allowed.insert(known);
        }
    }
    (allowed, findings)
}

/// Run every rule over the workspace rooted at `root`. Equivalent to
/// [`lint_workspace_rules`] with an empty filter.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    lint_workspace_rules(root, &[])
}

/// Run the lint over the workspace rooted at `root`, keeping only the
/// rule ids in `only` (empty = all rules). The workspace is read and
/// lexed exactly once ([`Workspace::load`]); every rule shares the
/// cached token streams.
pub fn lint_workspace_rules(root: &Path, only: &[String]) -> io::Result<Vec<Finding>> {
    let ws = Workspace::load(root)?;
    let reg = ltree::default_registry();
    let mut findings = Vec::new();

    // Per-file escape hatches (and the findings for malformed ones).
    let mut allows: BTreeMap<PathBuf, BTreeSet<&'static str>> = BTreeMap::new();
    for file in &ws.files {
        let (set, bad) = file_allows(file);
        findings.extend(bad);
        if !set.is_empty() {
            allows.insert(file.path.clone(), set);
        }
    }

    // R6 checks every minted series name against the architecture
    // doc's naming table; a missing doc means nothing is documented.
    let documented = ws
        .architecture
        .as_deref()
        .map(documented_metric_names)
        .unwrap_or_default();

    // R1 runs over the known crate roots, so a crate *missing* its
    // lib.rs attributes is caught even though the content scan below
    // can only flag what exists.
    for c in &ws.crates {
        let rel = if c.dir.is_empty() {
            "src/lib.rs".to_string()
        } else {
            format!("{}/src/lib.rs", c.dir)
        };
        if let Some(f) = ws.files.iter().find(|f| f.rel == rel) {
            findings.extend(check_crate_attrs(&f.path, &f.content));
        }
    }

    // Per-file rules, one pass over the shared token streams.
    let mut edges = Vec::new();
    for file in &ws.files {
        findings.extend(check_lock_unwrap(file));
        if file.in_tests {
            findings.extend(check_fixed_ports(file));
            findings.extend(check_fixed_paths(file));
        }
        findings.extend(check_spec_strings_rs(file, &reg));
        findings.extend(check_metric_names(file, &documented));
        findings.extend(check_atomics(file));
        edges.extend(lock_edges(file));
    }
    // R7 is workspace-wide: the lock-order graph unions every
    // function's edges before the cycle search.
    findings.extend(lock_cycle_findings(&edges));

    for (path, content) in &ws.markdown {
        findings.extend(check_spec_strings_md(path, content, &reg));
    }

    // R9: the declared crate graph is load-bearing — malformed or
    // missing is itself a finding, not a skip.
    let arch_path = root.join("ARCHITECTURE.md");
    match ws.architecture.as_deref().map(archdoc::parse_crate_graph) {
        Some(Ok(graph)) => findings.extend(check_layering(&ws, &graph)),
        Some(Err(e)) => findings.push(Finding {
            path: arch_path.clone(),
            line: 0,
            rule: "crate-layering",
            message: format!("[xtask:crate-graph] is malformed: {e}"),
        }),
        None => findings.push(Finding {
            path: arch_path.clone(),
            line: 0,
            rule: "crate-layering",
            message: "ARCHITECTURE.md is missing — the declared crate graph cannot be \
                      checked"
                .to_string(),
        }),
    }

    // R10 runs when this workspace has the wire codec at all (the
    // fixture mini-workspaces do not).
    if let Some(wire) = ws
        .files
        .iter()
        .find(|f| f.rel == "crates/remote/src/wire.rs")
    {
        let error_enum = ws
            .files
            .iter()
            .find(|f| f.rel == "crates/core/src/error.rs");
        match ws.architecture.as_deref().map(archdoc::parse_wire_tags) {
            Some(Ok(table)) => findings.extend(check_wire_tags(wire, error_enum, &table)),
            Some(Err(e)) => findings.push(Finding {
                path: arch_path,
                line: 0,
                rule: "wire-tags",
                message: format!("[xtask:wire-error-tags] is malformed: {e}"),
            }),
            None => {} // already reported by the missing-doc finding above
        }
    }

    // Apply the escape hatches (the meta-rule's own findings are never
    // suppressible), then the CLI rule filter.
    findings.retain(|f| {
        f.rule == "xtask-allow" || !allows.get(&f.path).is_some_and(|set| set.contains(f.rule))
    });
    if !only.is_empty() {
        findings.retain(|f| only.iter().any(|r| r == f.rule));
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    Ok(findings)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as the `--json` machine output:
/// `{"count":N,"findings":[{"rule":…,"file":…,"line":N,"message":…}]}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"count\":");
    out.push_str(&findings.len().to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path.display().to_string()),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("]}");
    out
}

/// Render one finding as a GitHub Actions workflow command, so CI
/// findings land as annotations on the PR diff.
pub fn github_annotation(f: &Finding) -> String {
    let esc = |s: &str| {
        s.replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A")
    };
    format!(
        "::error file={},line={},title=xtask {}::{}",
        esc(&f.path.display().to_string()),
        f.line.max(1),
        f.rule,
        esc(&f.message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(content: &str) -> SourceFile {
        SourceFile {
            path: PathBuf::from("mem.rs"),
            rel: "mem.rs".into(),
            crate_name: None,
            in_tests: false,
            content: content.to_string(),
            tokens: lex(content),
        }
    }

    #[test]
    fn allows_parse_and_police_justifications() {
        let ok = file("// xtask-allow: fixed-port — exercises literal dial strings\n");
        let (set, bad) = file_allows(&ok);
        assert!(set.contains("fixed-port") && bad.is_empty());

        let unjustified = file("// xtask-allow: fixed-port\n");
        let (set, bad) = file_allows(&unjustified);
        assert!(set.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "xtask-allow");

        let unknown = file("// xtask-allow: no-such-rule — whatever reason\n");
        let (set, bad) = file_allows(&unknown);
        assert!(set.is_empty());
        assert!(bad[0].message.contains("no known rule"));
    }

    #[test]
    fn json_output_escapes_and_counts() {
        let f = Finding {
            path: PathBuf::from("a/b.rs"),
            line: 7,
            rule: "fixed-port",
            message: "say \"no\"\nplease".to_string(),
        };
        let json = render_json(&[f]);
        assert!(json.starts_with("{\"count\":1,"));
        assert!(json.contains("\\\"no\\\"\\n"));
        assert!(render_json(&[]).contains("\"count\":0"));
    }

    #[test]
    fn github_annotations_escape_newlines_and_floor_lines() {
        let f = Finding {
            path: PathBuf::from("x.rs"),
            line: 0,
            rule: "crate-attrs",
            message: "a\nb".to_string(),
        };
        let a = github_annotation(&f);
        assert!(a.starts_with("::error file=x.rs,line=1,"));
        assert!(a.ends_with("a%0Ab"));
    }
}
