//! A dependency-free Rust lexer — the substrate `ltree-analyze` builds
//! its workspace model on.
//!
//! The lexer is *lossless and total*: it never fails, never panics, and
//! every byte of the input is covered either by a token span or by
//! inter-token whitespace (the `lexer` test suite asserts this over the
//! whole live workspace, plus a SplitMix64 fuzz over mutated files).
//! It understands the token classes a syntax-level lint needs to get
//! right — the classes the previous substring-matching rules could not
//! see:
//!
//! * raw strings with any hash depth (`r#"…"#`), byte strings
//!   (`b"…"`), raw byte strings (`br#"…"#`), raw identifiers
//!   (`r#type`);
//! * nested block comments (`/* /* */ */`), with doc / non-doc
//!   classification for both line (`///` vs `////`, `//!`) and block
//!   (`/** … */`, `/*! … */`) forms;
//! * lifetimes vs char literals (`'a` vs `'a'`, including escapes);
//! * numeric literals with type suffixes, float points and exponent
//!   signs (`1_000u64`, `1.5e-3`) without swallowing range operators
//!   (`0..n`).
//!
//! Unterminated constructs (an open block comment or string at EOF)
//! consume to end of input rather than erroring — a lint must keep
//! lexing whatever the tree throws at it.

use std::fmt;

/// Token classification. Comments are tokens (rules reason about
/// comment *placement*, e.g. the atomics audit), so nothing is thrown
/// away at lex time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `self`, `Ordering`, …).
    Ident,
    /// Raw identifier (`r#type`).
    RawIdent,
    /// Lifetime or loop label (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Byte char literal (`b'a'`).
    ByteChar,
    /// Ordinary string literal, escapes included (`"…"`).
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`).
    RawStr,
    /// Byte string literal (`b"…"`).
    ByteStr,
    /// Raw byte string literal (`br"…"`, `br#"…"#`).
    RawByteStr,
    /// Numeric literal (integer or float, suffixes included).
    Num,
    /// Non-doc line comment (`//`, `////`).
    LineComment,
    /// Doc line comment (`///`, `//!`).
    LineDoc,
    /// Non-doc block comment (`/* … */`, nesting handled).
    BlockComment,
    /// Doc block comment (`/** … */`, `/*! … */`).
    BlockDoc,
    /// Any single punctuation byte (`.`, `{`, `<`, …). Multi-byte
    /// operators arrive as adjacent `Punct` tokens (`-` `>` for `->`).
    Punct,
}

impl TokKind {
    /// Is this token a comment (doc or not)?
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokKind::LineComment | TokKind::LineDoc | TokKind::BlockComment | TokKind::BlockDoc
        )
    }

    /// Is this token a doc comment?
    pub fn is_doc(self) -> bool {
        matches!(self, TokKind::LineDoc | TokKind::BlockDoc)
    }

    /// Is this token any flavor of string literal?
    pub fn is_string(self) -> bool {
        matches!(
            self,
            TokKind::Str | TokKind::RawStr | TokKind::ByteStr | TokKind::RawByteStr
        )
    }
}

/// One lexed token: classification plus byte span and 1-based start
/// line. Spans index the source the token was lexed from; the model
/// owns that source, so tokens are plain copyable data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive).
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}@{}..{} (line {})",
            self.kind, self.start, self.end, self.line
        )
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a complete token stream. Total: consumes every byte,
/// never panics; see the module docs for the guarantees.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.src.len() {
            let b = self.src[self.i];
            if b.is_ascii_whitespace() {
                if b == b'\n' {
                    self.line += 1;
                }
                self.i += 1;
                continue;
            }
            let start = self.i;
            let line = self.line;
            let kind = self.next_kind(b);
            debug_assert!(self.i > start, "lexer must make progress");
            self.out.push(Token {
                kind,
                start,
                end: self.i,
                line,
            });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.i + ahead).unwrap_or(&0)
    }

    /// Consume the construct starting with `b` at `self.i`, advancing
    /// `self.i` and `self.line`, and return its kind.
    fn next_kind(&mut self, b: u8) -> TokKind {
        match b {
            b'/' if self.peek(1) == b'/' => self.line_comment(),
            b'/' if self.peek(1) == b'*' => self.block_comment(),
            b'r' if self.peek(1) == b'"' || self.peek(1) == b'#' => self.raw_string_or_ident(1),
            b'b' if self.peek(1) == b'"' => {
                self.i += 1;
                self.string();
                TokKind::ByteStr
            }
            b'b' if self.peek(1) == b'\'' => {
                self.i += 1;
                self.char_literal();
                TokKind::ByteChar
            }
            b'b' if self.peek(1) == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') => {
                self.i += 1;
                match self.raw_string_or_ident(1) {
                    TokKind::RawStr => TokKind::RawByteStr,
                    // `br#ident` is not Rust; lexed as an ident for
                    // totality.
                    other => other,
                }
            }
            b'"' => self.string(),
            b'\'' => self.lifetime_or_char(),
            _ if is_ident_start(b) => self.ident(),
            _ if b.is_ascii_digit() => self.number(),
            _ => {
                self.i += 1;
                TokKind::Punct
            }
        }
    }

    fn line_comment(&mut self) -> TokKind {
        let start = self.i;
        while self.i < self.src.len() && self.src[self.i] != b'\n' {
            self.i += 1;
        }
        let text = &self.src[start..self.i];
        // `///` is doc, `////…` is not (rustc's rule); `//!` is doc.
        let doc =
            (text.starts_with(b"///") && !text.starts_with(b"////")) || text.starts_with(b"//!");
        if doc {
            TokKind::LineDoc
        } else {
            TokKind::LineComment
        }
    }

    fn block_comment(&mut self) -> TokKind {
        let start = self.i;
        self.i += 2; // consume `/*`
        let mut depth = 1usize;
        while self.i < self.src.len() && depth > 0 {
            match self.src[self.i] {
                b'/' if self.peek(1) == b'*' => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.peek(1) == b'/' => {
                    depth -= 1;
                    self.i += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        let text = &self.src[start..self.i];
        // `/** … */` and `/*! … */` are doc; `/**/` (empty) and
        // `/*** …` are not — mirroring rustc.
        let doc =
            (text.starts_with(b"/**") && text.len() > 4 && text[3] != b'*' && text[3] != b'/')
                || text.starts_with(b"/*!");
        if doc {
            TokKind::BlockDoc
        } else {
            TokKind::BlockComment
        }
    }

    /// `self.i` is at `r`. Either a raw string (`r"…"` / `r#…#"…"#…#`)
    /// or a raw identifier (`r#ident`) or a plain ident starting with
    /// `r`. `hash_off` is where the `#`/`"` run starts relative to
    /// `self.i` (1 for `r…`, also 1 after the `b` of `br…` was
    /// consumed).
    fn raw_string_or_ident(&mut self, hash_off: usize) -> TokKind {
        let mut hashes = 0usize;
        while self.peek(hash_off + hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(hash_off + hashes) == b'"' {
            self.i += hash_off + hashes + 1; // past `r##…"`
                                             // Scan for `"` followed by `hashes` hashes.
            while self.i < self.src.len() {
                let c = self.src[self.i];
                if c == b'\n' {
                    self.line += 1;
                    self.i += 1;
                    continue;
                }
                if c == b'"' {
                    let mut k = 1;
                    while k <= hashes && self.peek(k) == b'#' {
                        k += 1;
                    }
                    if k == hashes + 1 {
                        self.i += 1 + hashes;
                        return TokKind::RawStr;
                    }
                }
                self.i += 1;
            }
            return TokKind::RawStr; // unterminated: consumed to EOF
        }
        if hashes >= 1 && is_ident_start(self.peek(hash_off + hashes)) {
            // Raw identifier `r#ident`.
            self.i += hash_off + hashes;
            self.consume_ident_run();
            return TokKind::RawIdent;
        }
        // Plain identifier starting with `r` (or `br` — impossible in
        // valid Rust, but the lexer is total).
        self.ident()
    }

    fn string(&mut self) -> TokKind {
        self.i += 1; // opening quote
        while self.i < self.src.len() {
            match self.src[self.i] {
                b'\\' => {
                    // Escape: skip the escaped byte too; a line
                    // continuation (`\` + newline) still counts a line.
                    if self.peek(1) == b'\n' {
                        self.line += 1;
                    }
                    self.i += 2;
                }
                b'"' => {
                    self.i += 1;
                    return TokKind::Str;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.i = self.src.len(); // an escape at EOF may have overshot
        TokKind::Str // unterminated
    }

    /// `self.i` is at `'`. Rust's rule: `'x` followed by ident-start
    /// where the char after is not another `'` is a lifetime (`'a`,
    /// `'static`); everything else is a char literal (`'a'`, `'\n'`).
    fn lifetime_or_char(&mut self) -> TokKind {
        let n1 = self.peek(1);
        if is_ident_start(n1) && self.peek(2) != b'\'' {
            self.i += 1;
            self.consume_ident_run();
            return TokKind::Lifetime;
        }
        self.char_literal()
    }

    fn char_literal(&mut self) -> TokKind {
        self.i += 1; // opening quote
        while self.i < self.src.len() {
            match self.src[self.i] {
                b'\\' => self.i += 2,
                b'\'' => {
                    self.i += 1;
                    return TokKind::Char;
                }
                // A raw newline cannot appear in a char literal; bail
                // so a stray quote never swallows the rest of the file.
                b'\n' => return TokKind::Char,
                _ => self.i += 1,
            }
        }
        self.i = self.src.len();
        TokKind::Char
    }

    fn consume_ident_run(&mut self) {
        while self.i < self.src.len() && is_ident_continue(self.src[self.i]) {
            self.i += 1;
        }
    }

    fn ident(&mut self) -> TokKind {
        self.consume_ident_run();
        TokKind::Ident
    }

    fn number(&mut self) -> TokKind {
        // Integer / prefix / suffix run: `0xFF`, `1_000u64`, `17`.
        self.consume_num_run();
        // Fractional part: only when `.` is followed by a digit, so
        // `0..n` and `x.0` tokenize as range / field access.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.i += 1;
            self.consume_num_run();
        }
        // Exponent sign: `1e-3`, `2.5E+7` — the run above stopped at
        // the sign with `e`/`E` as its last byte.
        if (self.peek(0) == b'+' || self.peek(0) == b'-')
            && matches!(self.src[self.i - 1], b'e' | b'E')
            && self.peek(1).is_ascii_digit()
        {
            self.i += 1;
            self.consume_num_run();
        }
        TokKind::Num
    }

    fn consume_num_run(&mut self) {
        while self.i < self.src.len()
            && (self.src[self.i].is_ascii_alphanumeric() || self.src[self.i] == b'_')
        {
            self.i += 1;
        }
    }
}

/// Decode the *value* of a string-literal token: the text between the
/// quotes with `\"` and `\\` unescaped (other escapes are left as-is —
/// the rules match plain substrings like host:port patterns, for which
/// exotic escapes are irrelevant). Raw strings are returned verbatim
/// between their delimiters. Returns `None` for non-string tokens.
pub fn string_value(tok: &Token, src: &str) -> Option<String> {
    let text = tok.text(src);
    let inner = match tok.kind {
        TokKind::Str => text
            .strip_prefix('"')?
            .strip_suffix('"')
            .unwrap_or(&text[1..]),
        TokKind::ByteStr => text
            .strip_prefix("b\"")?
            .strip_suffix('"')
            .unwrap_or(&text[2..]),
        TokKind::RawStr | TokKind::RawByteStr => {
            let after = text.trim_start_matches('b');
            let after = after.strip_prefix('r')?;
            let hashes = after.bytes().take_while(|&b| b == b'#').count();
            let body = &after[hashes..];
            let body = body.strip_prefix('"').unwrap_or(body);
            let end = body.len().saturating_sub(1 + hashes);
            return Some(body.get(..end).unwrap_or("").to_string());
        }
        _ => return None,
    };
    if !inner.contains('\\') {
        return Some(inner.to_string());
    }
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lifetimes_vs_chars() {
        use TokKind::*;
        assert_eq!(
            kinds("<'a> 'a' '\\n' 'static 'x"),
            vec![Punct, Lifetime, Punct, Char, Char, Lifetime, Lifetime]
        );
    }

    #[test]
    fn raw_strings_and_idents() {
        use TokKind::*;
        assert_eq!(
            kinds(r####"r"a" r#"b"c"# r#type br#"d"# b"e""####),
            vec![RawStr, RawStr, RawIdent, RawByteStr, ByteStr]
        );
    }

    #[test]
    fn nested_block_comments_and_doc_classes() {
        use TokKind::*;
        assert_eq!(kinds("/* a /* b */ c */ x"), vec![BlockComment, Ident]);
        assert_eq!(
            kinds("/// d\n//// n\n//! d\n// n"),
            vec![LineDoc, LineComment, LineDoc, LineComment]
        );
        assert_eq!(
            kinds("/** d */ /*! d */ /**/"),
            vec![BlockDoc, BlockDoc, BlockComment]
        );
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        use TokKind::*;
        assert_eq!(kinds("0..10"), vec![Num, Punct, Punct, Num]);
        assert_eq!(
            kinds("1.5e-3 0xFFu64 x.0"),
            vec![Num, Num, Ident, Punct, Num]
        );
    }

    #[test]
    fn string_values_unescape_quotes() {
        let src = r#""a\"b" r"c\d""#;
        let toks = lex(src);
        assert_eq!(string_value(&toks[0], src).unwrap(), "a\"b");
        assert_eq!(string_value(&toks[1], src).unwrap(), "c\\d");
    }

    #[test]
    fn every_gap_is_whitespace() {
        let src = "fn main() { let s = \"x // not a comment\"; } // tail";
        let toks = lex(src);
        let mut prev = 0;
        for t in &toks {
            assert!(src[prev..t.start].chars().all(char::is_whitespace));
            prev = t.end;
        }
        assert!(src[prev..].chars().all(char::is_whitespace));
    }
}
