//! `cargo xtask lint` — run the workspace lint rules (see the library
//! docs for the rule list). Exits nonzero when any rule fires.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // cargo runs the binary with the *package* dir as manifest dir;
    // the workspace root is two levels up (crates/xtask -> repo root).
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {}
        other => {
            eprintln!("usage: cargo xtask lint");
            eprintln!("unknown subcommand: {other:?}");
            return ExitCode::FAILURE;
        }
    }
    let root = match args.next() {
        Some(p) => PathBuf::from(p),
        None => workspace_root(),
    };
    let findings = match xtask::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: i/o error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("xtask lint: clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!("xtask lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
