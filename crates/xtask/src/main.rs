//! `cargo xtask lint [--json] [--rule <id>]... [root]` — run the
//! workspace lint rules (see the library docs for the rule list).
//! Exits nonzero when any rule fires.
//!
//! `--json` switches to the machine output
//! (`{"count":…,"findings":[…]}`); `--rule <id>` restricts the run to
//! the named rules (repeatable). When `GITHUB_ACTIONS` is set in the
//! environment, findings are additionally emitted as
//! `::error file=…,line=…::` workflow commands so they land as
//! annotations on the PR diff.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // cargo runs the binary with the *package* dir as manifest dir;
    // the workspace root is two levels up (crates/xtask -> repo root).
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--json] [--rule <id>]... [root]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("lint") {
        eprintln!("unknown subcommand: {:?}", args.first());
        return usage();
    }
    let mut json = false;
    let mut rules: Vec<String> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--rule" => {
                i += 1;
                let Some(id) = args.get(i) else {
                    eprintln!("--rule needs a rule id");
                    return usage();
                };
                if !xtask::RULE_IDS.contains(&id.as_str()) {
                    eprintln!(
                        "unknown rule id `{id}` (known: {})",
                        xtask::RULE_IDS.join(", ")
                    );
                    return ExitCode::FAILURE;
                }
                rules.push(id.clone());
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag: {flag}");
                return usage();
            }
            path => root = Some(PathBuf::from(path)),
        }
        i += 1;
    }
    let root = root.unwrap_or_else(workspace_root);
    let findings = match xtask::lint_workspace_rules(&root, &rules) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: i/o error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", xtask::render_json(&findings));
    } else if findings.is_empty() {
        println!("xtask lint: clean");
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("xtask lint: {} finding(s)", findings.len());
    }
    if std::env::var("GITHUB_ACTIONS")
        .map(|v| !v.is_empty())
        .unwrap_or(false)
    {
        for f in &findings {
            println!("{}", xtask::github_annotation(f));
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
