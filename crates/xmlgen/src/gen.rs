//! Seeded random XML document generation.
//!
//! Documents are grown by random attachment under a small *schema*: each
//! profile maps a parent tag to the child tags it may contain, so the
//! generated trees answer realistic path queries (`/site/regions//item`)
//! with non-empty results instead of tag soup. Growth is biased towards
//! recently created elements to produce the long spines real documents
//! have.

use ltree_core::rng::SplitMix64;
use std::collections::HashMap;
use xmldb::{XmlNodeId, XmlTree};

/// A document shape description (a miniature schema plus growth knobs).
#[derive(Debug, Clone)]
pub struct DocProfile {
    /// Profile name (for experiment tables).
    pub name: &'static str,
    /// Root element tag.
    pub root: &'static str,
    /// Parent tag → child-tag vocabulary. Tags without an entry are
    /// leaves.
    pub rules: Vec<(&'static str, Vec<&'static str>)>,
    /// Number of elements to generate (including the root).
    pub target_elements: usize,
    /// Maximum element depth (root = 0).
    pub max_depth: u32,
    /// Probability that an element gets a text run.
    pub text_prob: f64,
    /// Bias towards attaching to recently created elements (0 = uniform;
    /// towards 1 = strongly prefer recent parents → deeper, spikier trees).
    pub recency_bias: f64,
}

/// A generic profile with `n` elements and a free-form recursive schema.
pub fn uniform_profile(n: usize) -> DocProfile {
    DocProfile {
        name: "uniform",
        root: "root",
        rules: vec![
            ("root", vec!["a", "b", "c", "d"]),
            ("a", vec!["x", "y", "b"]),
            ("b", vec!["y", "z"]),
            ("c", vec!["x", "z", "a"]),
            ("d", vec!["p", "q"]),
            ("x", vec!["p"]),
            ("y", vec!["q", "p"]),
        ],
        target_elements: n,
        max_depth: 8,
        text_prob: 0.3,
        recency_bias: 0.3,
    }
}

/// An XMark-flavoured auction-site profile with `n` elements.
pub fn auction_profile(n: usize) -> DocProfile {
    DocProfile {
        name: "auction",
        root: "site",
        rules: vec![
            (
                "site",
                vec!["regions", "people", "open_auctions", "categories"],
            ),
            ("regions", vec!["africa", "asia", "europe", "namerica"]),
            ("africa", vec!["item"]),
            ("asia", vec!["item"]),
            ("europe", vec!["item"]),
            ("namerica", vec!["item"]),
            ("item", vec!["name", "description", "location", "quantity"]),
            ("people", vec!["person"]),
            ("person", vec!["name", "emailaddress", "profile"]),
            ("profile", vec!["interest", "education"]),
            ("open_auctions", vec!["open_auction"]),
            (
                "open_auction",
                vec!["bidder", "initial", "current", "itemref"],
            ),
            ("bidder", vec!["date", "increase"]),
            ("categories", vec!["category"]),
            ("category", vec!["name", "description"]),
            ("description", vec!["text", "parlist"]),
            ("parlist", vec!["listitem"]),
            ("listitem", vec!["text", "parlist"]),
        ],
        target_elements: n,
        max_depth: 12,
        text_prob: 0.5,
        recency_bias: 0.45,
    }
}

/// The paper's motivating `book/chapter/title` shape, with `n` elements.
pub fn book_catalog_profile(n: usize) -> DocProfile {
    DocProfile {
        name: "books",
        root: "catalog",
        rules: vec![
            ("catalog", vec!["book"]),
            ("book", vec!["title", "author", "chapter", "isbn"]),
            ("chapter", vec!["title", "section", "para"]),
            ("section", vec!["title", "section", "para"]),
            ("para", vec!["emph"]),
        ],
        target_elements: n,
        max_depth: 9,
        text_prob: 0.6,
        recency_bias: 0.35,
    }
}

/// Generate a document for `profile` with a deterministic `seed`.
pub fn generate(profile: &DocProfile, seed: u64) -> XmlTree {
    let mut rng = SplitMix64::new(seed);
    let rules: HashMap<&str, &Vec<&'static str>> =
        profile.rules.iter().map(|(p, c)| (*p, c)).collect();
    let (mut tree, root) = XmlTree::with_root(profile.root);
    if profile.target_elements <= 1 {
        return tree;
    }
    // Fertile nodes: can still take children (non-leaf tag, depth room).
    let mut fertile: Vec<(XmlNodeId, u32, &Vec<&'static str>)> = Vec::new();
    if let Some(vocab) = rules.get(profile.root) {
        fertile.push((root, 0, vocab));
    }
    assert!(
        !fertile.is_empty(),
        "profile '{}' gives the root tag no children; nothing can grow",
        profile.name
    );
    let mut texts = 0usize;
    // Skeleton pass: materialize one element of every reachable tag so
    // schema queries always have answers, regardless of seed.
    let mut created: HashMap<&str, (XmlNodeId, u32)> = HashMap::new();
    created.insert(profile.root, (root, 0));
    let mut changed = true;
    while changed && tree.element_count() < profile.target_elements {
        changed = false;
        for (ptag, vocab) in &profile.rules {
            let Some(&(pid, pdepth)) = created.get(ptag) else {
                continue;
            };
            if pdepth + 1 >= profile.max_depth {
                continue;
            }
            for tag in vocab {
                if created.contains_key(tag) || tree.element_count() >= profile.target_elements {
                    continue;
                }
                let id = tree.add_child(pid, tag).expect("parent is live");
                created.insert(tag, (id, pdepth + 1));
                if pdepth + 1 < profile.max_depth {
                    if let Some(child_vocab) = rules.get(tag) {
                        fertile.push((id, pdepth + 1, child_vocab));
                    }
                }
                changed = true;
            }
        }
    }
    while tree.element_count() < profile.target_elements && !fertile.is_empty() {
        let idx = if rng.gen_bool(profile.recency_bias.clamp(0.0, 1.0)) {
            let lo = fertile.len().saturating_sub((fertile.len() / 4).max(1));
            rng.gen_range(lo..fertile.len())
        } else {
            rng.gen_range(0..fertile.len())
        };
        let (parent, pdepth, vocab) = fertile[idx];
        let tag = vocab[rng.gen_range(0..vocab.len())];
        let id = tree.add_child(parent, tag).expect("parent is live");
        if rng.gen_bool(profile.text_prob) {
            texts += 1;
            tree.add_text(id, &format!("text{texts}"))
                .expect("element is live");
        }
        let depth = pdepth + 1;
        if depth < profile.max_depth {
            if let Some(child_vocab) = rules.get(tag) {
                fertile.push((id, depth, child_vocab));
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        for n in [1usize, 2, 10, 500] {
            let t = generate(&uniform_profile(n), 42);
            assert_eq!(t.element_count(), n, "n = {n}");
        }
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = generate(&auction_profile(200), 7);
        let b = generate(&auction_profile(200), 7);
        assert_eq!(xmldb::to_string(&a).unwrap(), xmldb::to_string(&b).unwrap());
        let c = generate(&auction_profile(200), 8);
        assert_ne!(xmldb::to_string(&a).unwrap(), xmldb::to_string(&c).unwrap());
    }

    #[test]
    fn respects_max_depth() {
        let profile = DocProfile {
            max_depth: 3,
            ..uniform_profile(300)
        };
        let t = generate(&profile, 1);
        for id in t.all_elements() {
            assert!(t.depth(id).unwrap() <= 3);
        }
    }

    #[test]
    fn respects_schema_rules() {
        let profile = auction_profile(800);
        let rules: HashMap<&str, &Vec<&'static str>> =
            profile.rules.iter().map(|(p, c)| (*p, c)).collect();
        let t = generate(&profile, 11);
        assert_eq!(t.element_count(), 800);
        for id in t.all_elements() {
            if let Some(parent) = t.parent(id).unwrap() {
                let ptag = t.tag_name(parent).unwrap();
                let tag = t.tag_name(id).unwrap();
                let vocab = rules
                    .get(ptag)
                    .unwrap_or_else(|| panic!("{ptag} must be fertile"));
                assert!(vocab.contains(&tag), "{tag} not allowed under {ptag}");
            }
        }
    }

    #[test]
    fn auction_queries_have_answers() {
        // The experiments rely on these paths matching something.
        let t = generate(&auction_profile(1500), 99);
        let tags: std::collections::HashSet<String> = t
            .all_elements()
            .iter()
            .map(|&id| t.tag_name(id).unwrap().to_owned())
            .collect();
        for needed in ["regions", "item", "person", "name", "description"] {
            assert!(tags.contains(needed), "generated document lacks <{needed}>");
        }
    }

    #[test]
    fn generated_documents_parse_back() {
        let t = generate(&book_catalog_profile(120), 3);
        let s = xmldb::to_string(&t).unwrap();
        let back = xmldb::parse(&s).unwrap();
        assert_eq!(back.element_count(), 120);
    }
}
