//! Update-workload drivers over any [`LabelingScheme`].
//!
//! The experiment runners in `ltree-bench` drive these streams against every
//! scheme and read the [`WorkloadReport`]: amortized label writes /
//! node touches (the paper's cost unit), label width, memory and wall
//! time. All streams are seeded and reproducible.

use ltree_core::rng::SplitMix64;
use ltree_core::{LabelingScheme, LeafHandle, Result, SchemeStats, Splice};
use std::time::{Duration, Instant};

/// The update stream shapes used by the experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Insert after a uniformly random live item.
    Uniform,
    /// `hot_weight` of the inserts land in the first `hot_fraction` of
    /// the document (the paper's "uneven insertion rates", §6).
    Hotspot {
        /// Fraction of the document that is hot (e.g. 0.1).
        hot_fraction: f64,
        /// Probability an insert targets the hot region (e.g. 0.9).
        hot_weight: f64,
    },
    /// Always insert after the last item (document append).
    Append,
    /// Always insert before the first item.
    Prepend,
    /// Batched subtree-style insertion at uniformly random anchors
    /// (paper, §4.1). `ops` counts leaves, so `ops / batch` batches run.
    Batches {
        /// Leaves per batch.
        batch: usize,
    },
    /// Uniform inserts mixed with deletions of random live items.
    MixedDeletes {
        /// Fraction of operations that are deletions (0..1).
        delete_ratio: f64,
    },
}

impl Workload {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::Hotspot { .. } => "hotspot",
            Workload::Append => "append",
            Workload::Prepend => "prepend",
            Workload::Batches { .. } => "batches",
            Workload::MixedDeletes { .. } => "mixed-deletes",
        }
    }
}

/// Everything the experiment tables need from one run.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Scheme under test.
    pub scheme: &'static str,
    /// Stream shape.
    pub workload: &'static str,
    /// Items present after the initial bulk build.
    pub initial: usize,
    /// Leaves inserted by the stream.
    pub inserted: u64,
    /// Items deleted by the stream.
    pub deleted: u64,
    /// Cost counters accumulated over the stream only.
    pub stats: SchemeStats,
    /// Bits needed for any label at the end.
    pub label_space_bits: u32,
    /// Approximate heap use at the end.
    pub memory_bytes: usize,
    /// Wall-clock time of the stream (driver bookkeeping included).
    pub wall: Duration,
    /// Wall-clock time spent inside the scheme's own calls only.
    pub scheme_wall: Duration,
}

impl WorkloadReport {
    /// Amortized label writes per inserted leaf.
    pub fn amortized_label_writes(&self) -> f64 {
        self.stats.label_writes as f64 / (self.inserted.max(1)) as f64
    }

    /// Amortized total maintenance cost per inserted leaf.
    pub fn amortized_cost(&self) -> f64 {
        (self.stats.label_writes + self.stats.node_touches) as f64 / (self.inserted.max(1)) as f64
    }
}

/// Check that live labels strictly increase along the driver's order.
pub fn verify_order<S: LabelingScheme>(scheme: &S, order: &[(LeafHandle, bool)]) -> Result<bool> {
    let mut prev: Option<u128> = None;
    for &(h, alive) in order {
        if !alive {
            continue;
        }
        let l = scheme.label_of(h)?;
        if let Some(p) = prev {
            if p >= l {
                return Ok(false);
            }
        }
        prev = Some(l);
    }
    Ok(true)
}

/// Drive `ops` leaf insertions (and deletions, for mixed streams) against
/// `scheme`, starting from a fresh bulk build of `initial` items.
///
/// The scheme's stats are reset after the bulk build so the report covers
/// the stream only (bulk loading is not an update in the paper's model).
pub fn run_workload<S: LabelingScheme>(
    scheme: &mut S,
    workload: Workload,
    initial: usize,
    ops: usize,
    seed: u64,
) -> Result<WorkloadReport> {
    let mut rng = SplitMix64::new(seed);
    let built = scheme.bulk_build(initial.max(1))?;
    // (handle, alive) in document order.
    let mut order: Vec<(LeafHandle, bool)> = built.into_iter().map(|h| (h, true)).collect();
    scheme.reset_scheme_stats();

    let start = Instant::now();
    let mut scheme_wall = Duration::ZERO;
    let mut inserted = 0u64;
    let mut deleted = 0u64;
    macro_rules! timed {
        ($e:expr) => {{
            let t0 = Instant::now();
            let out = $e;
            scheme_wall += t0.elapsed();
            out
        }};
    }
    while inserted < ops as u64 {
        match workload {
            Workload::Uniform => {
                let i = rng.gen_range(0..order.len());
                let h = timed!(scheme.insert_after(order[i].0))?;
                order.insert(i + 1, (h, true));
                inserted += 1;
            }
            Workload::Hotspot {
                hot_fraction,
                hot_weight,
            } => {
                let hot_len =
                    ((order.len() as f64 * hot_fraction).ceil() as usize).clamp(1, order.len());
                let i = if rng.gen_bool(hot_weight.clamp(0.0, 1.0)) {
                    rng.gen_range(0..hot_len)
                } else {
                    rng.gen_range(0..order.len())
                };
                let h = timed!(scheme.insert_after(order[i].0))?;
                order.insert(i + 1, (h, true));
                inserted += 1;
            }
            Workload::Append => {
                let i = order.len() - 1;
                let h = timed!(scheme.insert_after(order[i].0))?;
                order.push((h, true));
                inserted += 1;
            }
            Workload::Prepend => {
                let h = timed!(scheme.insert_before(order[0].0))?;
                order.insert(0, (h, true));
                inserted += 1;
            }
            Workload::Batches { batch } => {
                let k = batch.max(1).min(ops - inserted as usize).max(1);
                let i = rng.gen_range(0..order.len());
                let hs = timed!(scheme.insert_many_after(order[i].0, k))?;
                for (j, h) in hs.into_iter().enumerate() {
                    order.insert(i + 1 + j, (h, true));
                }
                inserted += k as u64;
            }
            Workload::MixedDeletes { delete_ratio } => {
                if rng.gen_bool(delete_ratio.clamp(0.0, 0.99)) && order.iter().any(|&(_, a)| a) {
                    // Delete a random live item.
                    loop {
                        let i = rng.gen_range(0..order.len());
                        if order[i].1 {
                            timed!(scheme.delete(order[i].0))?;
                            order[i].1 = false;
                            deleted += 1;
                            break;
                        }
                    }
                } else {
                    let i = rng.gen_range(0..order.len());
                    let h = timed!(scheme.insert_after(order[i].0))?;
                    order.insert(i + 1, (h, true));
                    inserted += 1;
                }
            }
        }
    }
    let wall = start.elapsed();
    debug_assert!(
        verify_order(scheme, &order)?,
        "scheme broke the order contract"
    );

    Ok(WorkloadReport {
        scheme: scheme.name(),
        workload: workload.name(),
        initial,
        inserted,
        deleted,
        stats: scheme.scheme_stats(),
        label_space_bits: scheme.label_space_bits(),
        memory_bytes: scheme.memory_bytes(),
        wall,
        scheme_wall,
    })
}

// ----------------------------------------------------------------------
// Edit scripts: generated once, replayed as batched splices
// ----------------------------------------------------------------------

/// One logical edit of a generated update script, phrased in *runs* so
/// the replayer can apply it as a single [`ltree_core::Splice`]. `at` is
/// a position among the **live** items at replay time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edit {
    /// Insert `count` fresh items immediately after the live item at
    /// position `at` (a subtree landing as one sibling run, paper §4.1).
    InsertRun {
        /// Live position of the anchor.
        at: usize,
        /// Items in the run (`>= 1`).
        count: usize,
    },
    /// Delete the run of `count` live items starting at position `at`
    /// (subtree removal, paper §2.3 — tombstones only, no relabeling).
    DeleteRun {
        /// Live position of the first item of the run.
        at: usize,
        /// Live items to delete (`>= 1`).
        count: usize,
    },
}

/// The workload shapes the scheme×workload sweep cross-products. Each
/// maps to a seeded [`EditScript`]; sizes scale with the `ops` budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EditProfile {
    /// Few large insert runs at random anchors — bulk document loading.
    BulkLoad {
        /// Items per run.
        run: usize,
    },
    /// Insert runs at the document tail — log/feed-style growth.
    AppendHeavy {
        /// Items per run.
        run: usize,
    },
    /// Single-item inserts hammering a small hot prefix (the paper's
    /// "uneven insertion rates", §6).
    SkewedPoint {
        /// Fraction of the document that is hot.
        hot_fraction: f64,
        /// Probability an insert targets the hot region.
        hot_weight: f64,
    },
    /// Insert runs mixed with delete runs — an interactive edit session.
    MixedEdit {
        /// Items per run.
        run: usize,
        /// Probability an edit is a deletion.
        delete_ratio: f64,
    },
    /// Mostly subtree removals, with enough inserts to keep the
    /// document from draining.
    DeleteHeavy {
        /// Items per run.
        run: usize,
    },
}

impl EditProfile {
    /// Short name for tables and the JSON sweep output.
    pub fn name(&self) -> &'static str {
        match self {
            EditProfile::BulkLoad { .. } => "bulk-load",
            EditProfile::AppendHeavy { .. } => "append-heavy",
            EditProfile::SkewedPoint { .. } => "skewed-point",
            EditProfile::MixedEdit { .. } => "mixed-edit",
            EditProfile::DeleteHeavy { .. } => "delete-heavy",
        }
    }
}

/// The sweep's standard workload set, sized for an `ops` budget.
pub fn standard_profiles(ops: usize) -> Vec<EditProfile> {
    let run = (ops / 64).clamp(4, 512);
    vec![
        EditProfile::BulkLoad { run: run * 4 },
        EditProfile::AppendHeavy { run },
        EditProfile::SkewedPoint {
            hot_fraction: 0.05,
            hot_weight: 0.9,
        },
        EditProfile::MixedEdit {
            run,
            delete_ratio: 0.3,
        },
        EditProfile::DeleteHeavy { run },
    ]
}

/// A generated, replayable update script: the profile it came from, the
/// initial bulk-build size it assumes, and the edits in order.
#[derive(Debug, Clone)]
pub struct EditScript {
    /// The shape that generated the script.
    pub profile: EditProfile,
    /// Items bulk-built before the first edit.
    pub initial: usize,
    /// The edits, in replay order.
    pub edits: Vec<Edit>,
}

/// Generate the edit script for `profile`: inserts continue until the
/// script carries at least `ops` inserted items (deletes ride along per
/// the profile). Scripts are pure data — deterministic per seed and
/// scheme-independent, so every scheme in a sweep replays the *same*
/// logical stream.
pub fn generate_edits(profile: EditProfile, initial: usize, ops: usize, seed: u64) -> EditScript {
    let mut rng = SplitMix64::new(seed);
    let mut live = initial.max(1);
    let mut inserted = 0usize;
    let mut edits = Vec::new();
    while inserted < ops {
        let budget = ops - inserted;
        match profile {
            EditProfile::BulkLoad { run } => {
                let count = run.min(budget).max(1);
                edits.push(Edit::InsertRun {
                    at: rng.gen_range(0..live),
                    count,
                });
                live += count;
                inserted += count;
            }
            EditProfile::AppendHeavy { run } => {
                let count = run.min(budget).max(1);
                edits.push(Edit::InsertRun {
                    at: live - 1,
                    count,
                });
                live += count;
                inserted += count;
            }
            EditProfile::SkewedPoint {
                hot_fraction,
                hot_weight,
            } => {
                let hot_len = ((live as f64 * hot_fraction).ceil() as usize).clamp(1, live);
                let at = if rng.gen_bool(hot_weight.clamp(0.0, 1.0)) {
                    rng.gen_range(0..hot_len)
                } else {
                    rng.gen_range(0..live)
                };
                edits.push(Edit::InsertRun { at, count: 1 });
                live += 1;
                inserted += 1;
            }
            EditProfile::MixedEdit { run, delete_ratio } => {
                if live > run && rng.gen_bool(delete_ratio.clamp(0.0, 0.9)) {
                    let count = rng.gen_range(1..run.max(2)).min(live - 1);
                    let at = rng.gen_range(0..live - count);
                    edits.push(Edit::DeleteRun { at, count });
                    live -= count;
                } else {
                    let count = rng.gen_range(1..run.max(2)).min(budget).max(1);
                    edits.push(Edit::InsertRun {
                        at: rng.gen_range(0..live),
                        count,
                    });
                    live += count;
                    inserted += count;
                }
            }
            EditProfile::DeleteHeavy { run } => {
                // Two removals per insertion run, sized so the document
                // hovers around its initial size instead of draining.
                if live > 2 * run && rng.gen_bool(0.66) {
                    let count = run.min(live - 1);
                    let at = rng.gen_range(0..live - count);
                    edits.push(Edit::DeleteRun { at, count });
                    live -= count;
                } else {
                    let count = (2 * run).min(budget.max(1));
                    edits.push(Edit::InsertRun {
                        at: rng.gen_range(0..live),
                        count,
                    });
                    live += count;
                    inserted += count;
                }
            }
        }
    }
    EditScript {
        profile,
        initial: initial.max(1),
        edits,
    }
}

impl EditScript {
    /// Replay against `scheme` with **one splice per edit** — the
    /// batched path the sweep measures. Stats cover the edits only (the
    /// initial bulk build is reset away, as in [`run_workload`]).
    pub fn replay<S: LabelingScheme>(&self, scheme: &mut S) -> Result<WorkloadReport> {
        self.replay_inner(scheme, true)
    }

    /// Replay with single-item calls only (`insert_after` loops and
    /// item-by-item deletes) — the per-node reference path.
    pub fn replay_incremental<S: LabelingScheme>(&self, scheme: &mut S) -> Result<WorkloadReport> {
        self.replay_inner(scheme, false)
    }

    fn replay_inner<S: LabelingScheme>(
        &self,
        scheme: &mut S,
        batched: bool,
    ) -> Result<WorkloadReport> {
        let mut live: Vec<LeafHandle> = scheme.bulk_build(self.initial)?;
        scheme.reset_scheme_stats();
        let start = Instant::now();
        let mut scheme_wall = Duration::ZERO;
        let mut inserted = 0u64;
        let mut deleted = 0u64;
        for &edit in &self.edits {
            match edit {
                Edit::InsertRun { at, count } => {
                    let at = at.min(live.len() - 1);
                    let anchor = live[at];
                    let hs = if batched {
                        let t0 = Instant::now();
                        let out = scheme.splice(Splice::InsertAfter { anchor, count })?;
                        scheme_wall += t0.elapsed();
                        out.into_inserted()
                    } else {
                        let mut out = Vec::with_capacity(count);
                        let mut cur = anchor;
                        for _ in 0..count {
                            let t0 = Instant::now();
                            cur = scheme.insert_after(cur)?;
                            scheme_wall += t0.elapsed();
                            out.push(cur);
                        }
                        out
                    };
                    inserted += hs.len() as u64;
                    live.splice(at + 1..at + 1, hs);
                }
                Edit::DeleteRun { at, count } => {
                    let at = at.min(live.len().saturating_sub(1));
                    let count = count.min(live.len() - at).min(live.len() - 1);
                    if count == 0 {
                        continue;
                    }
                    let n = if batched {
                        let t0 = Instant::now();
                        let out = scheme.splice(Splice::DeleteRun {
                            first: live[at],
                            count,
                        })?;
                        scheme_wall += t0.elapsed();
                        out.deleted()
                    } else {
                        for j in 0..count {
                            let t0 = Instant::now();
                            scheme.delete(live[at + j])?;
                            scheme_wall += t0.elapsed();
                        }
                        count
                    };
                    debug_assert_eq!(n, count, "the run is live by construction");
                    deleted += n as u64;
                    live.drain(at..at + count);
                }
            }
        }
        let wall = start.elapsed();
        let order: Vec<(LeafHandle, bool)> = live.iter().map(|&h| (h, true)).collect();
        debug_assert!(
            verify_order(scheme, &order)?,
            "scheme broke the order contract"
        );
        Ok(WorkloadReport {
            scheme: scheme.name(),
            workload: self.profile.name(),
            initial: self.initial,
            inserted,
            deleted,
            stats: scheme.scheme_stats(),
            label_space_bits: scheme.label_space_bits(),
            memory_bytes: scheme.memory_bytes(),
            wall,
            scheme_wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltree_core::{LTree, Params};

    fn ltree() -> LTree {
        LTree::new(Params::new(4, 2).unwrap())
    }

    #[test]
    fn uniform_stream_runs_and_reports() {
        let mut s = ltree();
        let r = run_workload(&mut s, Workload::Uniform, 100, 500, 1).unwrap();
        assert_eq!(r.inserted, 500);
        assert_eq!(r.scheme, "ltree");
        assert!(r.amortized_label_writes() > 0.0);
        assert!(r.label_space_bits > 0);
        s.check_invariants().unwrap();
    }

    #[test]
    fn hotspot_stream_is_heavier_than_uniform_for_gap() {
        use labeling_baselines::GapLabeling;
        let mut g1 = GapLabeling::new();
        let uniform = run_workload(&mut g1, Workload::Uniform, 500, 500, 2).unwrap();
        let mut g2 = GapLabeling::new();
        let hot = run_workload(
            &mut g2,
            Workload::Hotspot {
                hot_fraction: 0.02,
                hot_weight: 0.95,
            },
            500,
            500,
            2,
        )
        .unwrap();
        assert!(
            hot.amortized_label_writes() > uniform.amortized_label_writes(),
            "gap labeling must suffer under hotspots: {} vs {}",
            hot.amortized_label_writes(),
            uniform.amortized_label_writes()
        );
    }

    #[test]
    fn append_and_prepend_streams() {
        for w in [Workload::Append, Workload::Prepend] {
            let mut s = ltree();
            let r = run_workload(&mut s, w, 10, 300, 3).unwrap();
            assert_eq!(r.inserted, 300);
            s.check_invariants().unwrap();
        }
    }

    #[test]
    fn batches_insert_exactly_ops_leaves() {
        let mut s = ltree();
        let r = run_workload(&mut s, Workload::Batches { batch: 7 }, 50, 200, 4).unwrap();
        assert_eq!(r.inserted, 200);
        assert_eq!(s.len(), 250);
        s.check_invariants().unwrap();
    }

    #[test]
    fn mixed_deletes_counts_both() {
        let mut s = ltree();
        let r = run_workload(
            &mut s,
            Workload::MixedDeletes { delete_ratio: 0.3 },
            100,
            300,
            5,
        )
        .unwrap();
        assert_eq!(r.inserted, 300);
        assert!(r.deleted > 0);
        assert_eq!(r.stats.deletes, r.deleted);
        s.check_invariants().unwrap();
    }

    #[test]
    fn edit_scripts_cover_every_profile_and_are_deterministic() {
        for profile in standard_profiles(400) {
            let a = generate_edits(profile, 100, 400, 6);
            let b = generate_edits(profile, 100, 400, 6);
            assert_eq!(a.edits, b.edits, "{}", profile.name());
            let inserted: usize = a
                .edits
                .iter()
                .map(|e| match e {
                    Edit::InsertRun { count, .. } => *count,
                    Edit::DeleteRun { .. } => 0,
                })
                .sum();
            assert!(inserted >= 400, "{}: {} inserted", profile.name(), inserted);
            let mut s = ltree();
            let r = a.replay(&mut s).unwrap();
            assert_eq!(r.inserted as usize, inserted, "{}", profile.name());
            assert_eq!(r.workload, profile.name());
            s.check_invariants().unwrap();
        }
    }

    #[test]
    fn delete_heavy_scripts_really_delete_runs() {
        let script = generate_edits(EditProfile::DeleteHeavy { run: 16 }, 200, 600, 3);
        assert!(
            script
                .edits
                .iter()
                .any(|e| matches!(e, Edit::DeleteRun { .. })),
            "delete-heavy must exercise Splice::DeleteRun"
        );
        let mut s = ltree();
        let r = script.replay(&mut s).unwrap();
        assert!(r.deleted > 0);
        assert_eq!(r.stats.deletes, r.deleted);
        s.check_invariants().unwrap();
    }

    #[test]
    fn batched_and_incremental_replay_agree() {
        for profile in standard_profiles(300) {
            let script = generate_edits(profile, 64, 300, 12);
            let mut a = ltree();
            let ra = script.replay(&mut a).unwrap();
            let mut b = ltree();
            let rb = script.replay_incremental(&mut b).unwrap();
            assert_eq!(ra.inserted, rb.inserted, "{}", profile.name());
            assert_eq!(ra.deleted, rb.deleted, "{}", profile.name());
            assert_eq!(
                a.live_len(),
                b.live_len(),
                "{}: replays diverged",
                profile.name()
            );
            // The batched path must not do more label maintenance than
            // the single-insert path (Section 4.1's whole point).
            assert!(
                ra.stats.label_writes <= rb.stats.label_writes,
                "{}: batched wrote more labels ({} > {})",
                profile.name(),
                ra.stats.label_writes,
                rb.stats.label_writes
            );
        }
    }

    #[test]
    fn replay_clamps_out_of_range_positions() {
        // EditScript fields are public; hand-built scripts with stale
        // positions must degrade to the nearest live item, not panic.
        let script = EditScript {
            profile: EditProfile::BulkLoad { run: 4 },
            initial: 4,
            edits: vec![
                Edit::InsertRun {
                    at: 10_000,
                    count: 3,
                },
                Edit::DeleteRun {
                    at: 10_000,
                    count: 2,
                },
            ],
        };
        let mut s = ltree();
        let r = script.replay(&mut s).unwrap();
        assert_eq!(r.inserted, 3);
        s.check_invariants().unwrap();
    }

    #[test]
    fn reports_are_reproducible() {
        let mut a = ltree();
        let ra = run_workload(&mut a, Workload::Uniform, 64, 256, 9).unwrap();
        let mut b = ltree();
        let rb = run_workload(&mut b, Workload::Uniform, 64, 256, 9).unwrap();
        assert_eq!(ra.stats, rb.stats);
        assert_eq!(ra.label_space_bits, rb.label_space_bits);
    }
}
