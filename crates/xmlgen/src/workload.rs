//! Update-workload drivers over any [`LabelingScheme`].
//!
//! The experiment runners in `ltree-bench` drive these streams against every
//! scheme and read the [`WorkloadReport`]: amortized label writes /
//! node touches (the paper's cost unit), label width, memory and wall
//! time. All streams are seeded and reproducible.

use ltree_core::rng::SplitMix64;
use ltree_core::{LabelingScheme, LeafHandle, Result, SchemeStats};
use std::time::{Duration, Instant};

/// The update stream shapes used by the experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Insert after a uniformly random live item.
    Uniform,
    /// `hot_weight` of the inserts land in the first `hot_fraction` of
    /// the document (the paper's "uneven insertion rates", §6).
    Hotspot {
        /// Fraction of the document that is hot (e.g. 0.1).
        hot_fraction: f64,
        /// Probability an insert targets the hot region (e.g. 0.9).
        hot_weight: f64,
    },
    /// Always insert after the last item (document append).
    Append,
    /// Always insert before the first item.
    Prepend,
    /// Batched subtree-style insertion at uniformly random anchors
    /// (paper, §4.1). `ops` counts leaves, so `ops / batch` batches run.
    Batches {
        /// Leaves per batch.
        batch: usize,
    },
    /// Uniform inserts mixed with deletions of random live items.
    MixedDeletes {
        /// Fraction of operations that are deletions (0..1).
        delete_ratio: f64,
    },
}

impl Workload {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::Hotspot { .. } => "hotspot",
            Workload::Append => "append",
            Workload::Prepend => "prepend",
            Workload::Batches { .. } => "batches",
            Workload::MixedDeletes { .. } => "mixed-deletes",
        }
    }
}

/// Everything the experiment tables need from one run.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Scheme under test.
    pub scheme: &'static str,
    /// Stream shape.
    pub workload: &'static str,
    /// Items present after the initial bulk build.
    pub initial: usize,
    /// Leaves inserted by the stream.
    pub inserted: u64,
    /// Items deleted by the stream.
    pub deleted: u64,
    /// Cost counters accumulated over the stream only.
    pub stats: SchemeStats,
    /// Bits needed for any label at the end.
    pub label_space_bits: u32,
    /// Approximate heap use at the end.
    pub memory_bytes: usize,
    /// Wall-clock time of the stream (driver bookkeeping included).
    pub wall: Duration,
    /// Wall-clock time spent inside the scheme's own calls only.
    pub scheme_wall: Duration,
}

impl WorkloadReport {
    /// Amortized label writes per inserted leaf.
    pub fn amortized_label_writes(&self) -> f64 {
        self.stats.label_writes as f64 / (self.inserted.max(1)) as f64
    }

    /// Amortized total maintenance cost per inserted leaf.
    pub fn amortized_cost(&self) -> f64 {
        (self.stats.label_writes + self.stats.node_touches) as f64 / (self.inserted.max(1)) as f64
    }
}

/// Check that live labels strictly increase along the driver's order.
pub fn verify_order<S: LabelingScheme>(scheme: &S, order: &[(LeafHandle, bool)]) -> Result<bool> {
    let mut prev: Option<u128> = None;
    for &(h, alive) in order {
        if !alive {
            continue;
        }
        let l = scheme.label_of(h)?;
        if let Some(p) = prev {
            if p >= l {
                return Ok(false);
            }
        }
        prev = Some(l);
    }
    Ok(true)
}

/// Drive `ops` leaf insertions (and deletions, for mixed streams) against
/// `scheme`, starting from a fresh bulk build of `initial` items.
///
/// The scheme's stats are reset after the bulk build so the report covers
/// the stream only (bulk loading is not an update in the paper's model).
pub fn run_workload<S: LabelingScheme>(
    scheme: &mut S,
    workload: Workload,
    initial: usize,
    ops: usize,
    seed: u64,
) -> Result<WorkloadReport> {
    let mut rng = SplitMix64::new(seed);
    let built = scheme.bulk_build(initial.max(1))?;
    // (handle, alive) in document order.
    let mut order: Vec<(LeafHandle, bool)> = built.into_iter().map(|h| (h, true)).collect();
    scheme.reset_scheme_stats();

    let start = Instant::now();
    let mut scheme_wall = Duration::ZERO;
    let mut inserted = 0u64;
    let mut deleted = 0u64;
    macro_rules! timed {
        ($e:expr) => {{
            let t0 = Instant::now();
            let out = $e;
            scheme_wall += t0.elapsed();
            out
        }};
    }
    while inserted < ops as u64 {
        match workload {
            Workload::Uniform => {
                let i = rng.gen_range(0..order.len());
                let h = timed!(scheme.insert_after(order[i].0))?;
                order.insert(i + 1, (h, true));
                inserted += 1;
            }
            Workload::Hotspot {
                hot_fraction,
                hot_weight,
            } => {
                let hot_len =
                    ((order.len() as f64 * hot_fraction).ceil() as usize).clamp(1, order.len());
                let i = if rng.gen_bool(hot_weight.clamp(0.0, 1.0)) {
                    rng.gen_range(0..hot_len)
                } else {
                    rng.gen_range(0..order.len())
                };
                let h = timed!(scheme.insert_after(order[i].0))?;
                order.insert(i + 1, (h, true));
                inserted += 1;
            }
            Workload::Append => {
                let i = order.len() - 1;
                let h = timed!(scheme.insert_after(order[i].0))?;
                order.push((h, true));
                inserted += 1;
            }
            Workload::Prepend => {
                let h = timed!(scheme.insert_before(order[0].0))?;
                order.insert(0, (h, true));
                inserted += 1;
            }
            Workload::Batches { batch } => {
                let k = batch.max(1).min(ops - inserted as usize).max(1);
                let i = rng.gen_range(0..order.len());
                let hs = timed!(scheme.insert_many_after(order[i].0, k))?;
                for (j, h) in hs.into_iter().enumerate() {
                    order.insert(i + 1 + j, (h, true));
                }
                inserted += k as u64;
            }
            Workload::MixedDeletes { delete_ratio } => {
                if rng.gen_bool(delete_ratio.clamp(0.0, 0.99)) && order.iter().any(|&(_, a)| a) {
                    // Delete a random live item.
                    loop {
                        let i = rng.gen_range(0..order.len());
                        if order[i].1 {
                            timed!(scheme.delete(order[i].0))?;
                            order[i].1 = false;
                            deleted += 1;
                            break;
                        }
                    }
                } else {
                    let i = rng.gen_range(0..order.len());
                    let h = timed!(scheme.insert_after(order[i].0))?;
                    order.insert(i + 1, (h, true));
                    inserted += 1;
                }
            }
        }
    }
    let wall = start.elapsed();
    debug_assert!(
        verify_order(scheme, &order)?,
        "scheme broke the order contract"
    );

    Ok(WorkloadReport {
        scheme: scheme.name(),
        workload: workload.name(),
        initial,
        inserted,
        deleted,
        stats: scheme.scheme_stats(),
        label_space_bits: scheme.label_space_bits(),
        memory_bytes: scheme.memory_bytes(),
        wall,
        scheme_wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltree_core::{LTree, Params};

    fn ltree() -> LTree {
        LTree::new(Params::new(4, 2).unwrap())
    }

    #[test]
    fn uniform_stream_runs_and_reports() {
        let mut s = ltree();
        let r = run_workload(&mut s, Workload::Uniform, 100, 500, 1).unwrap();
        assert_eq!(r.inserted, 500);
        assert_eq!(r.scheme, "ltree");
        assert!(r.amortized_label_writes() > 0.0);
        assert!(r.label_space_bits > 0);
        s.check_invariants().unwrap();
    }

    #[test]
    fn hotspot_stream_is_heavier_than_uniform_for_gap() {
        use labeling_baselines::GapLabeling;
        let mut g1 = GapLabeling::new();
        let uniform = run_workload(&mut g1, Workload::Uniform, 500, 500, 2).unwrap();
        let mut g2 = GapLabeling::new();
        let hot = run_workload(
            &mut g2,
            Workload::Hotspot {
                hot_fraction: 0.02,
                hot_weight: 0.95,
            },
            500,
            500,
            2,
        )
        .unwrap();
        assert!(
            hot.amortized_label_writes() > uniform.amortized_label_writes(),
            "gap labeling must suffer under hotspots: {} vs {}",
            hot.amortized_label_writes(),
            uniform.amortized_label_writes()
        );
    }

    #[test]
    fn append_and_prepend_streams() {
        for w in [Workload::Append, Workload::Prepend] {
            let mut s = ltree();
            let r = run_workload(&mut s, w, 10, 300, 3).unwrap();
            assert_eq!(r.inserted, 300);
            s.check_invariants().unwrap();
        }
    }

    #[test]
    fn batches_insert_exactly_ops_leaves() {
        let mut s = ltree();
        let r = run_workload(&mut s, Workload::Batches { batch: 7 }, 50, 200, 4).unwrap();
        assert_eq!(r.inserted, 200);
        assert_eq!(s.len(), 250);
        s.check_invariants().unwrap();
    }

    #[test]
    fn mixed_deletes_counts_both() {
        let mut s = ltree();
        let r = run_workload(
            &mut s,
            Workload::MixedDeletes { delete_ratio: 0.3 },
            100,
            300,
            5,
        )
        .unwrap();
        assert_eq!(r.inserted, 300);
        assert!(r.deleted > 0);
        assert_eq!(r.stats.deletes, r.deleted);
        s.check_invariants().unwrap();
    }

    #[test]
    fn reports_are_reproducible() {
        let mut a = ltree();
        let ra = run_workload(&mut a, Workload::Uniform, 64, 256, 9).unwrap();
        let mut b = ltree();
        let rb = run_workload(&mut b, Workload::Uniform, 64, 256, 9).unwrap();
        assert_eq!(ra.stats, rb.stats);
        assert_eq!(ra.label_space_bits, rb.label_space_bits);
    }
}
