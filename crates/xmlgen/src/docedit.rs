//! Document-shaped update workloads: seeded edits against a real
//! [`Document<S>`](xmldb::Document).
//!
//! The leaf-stream workloads ([`crate::workload`]) drive a scheme
//! directly; this module drives it the way the XML layer does — through
//! [`Document::insert_fragments`] (one splice per sibling run) and
//! [`Document::delete_subtree`] (one delete-run splice per removal) —
//! so a sweep cell measures the *whole* funnel of the paper's Section
//! 4.1 story: parse → graft → splice, begin/end tags included.
//!
//! Edits are scheme-independent: every random draw depends only on the
//! seed and the DOM shape (which evolves identically for every scheme),
//! so each scheme in a sweep replays the same logical edit session and
//! the counter columns stay deterministic.

use ltree_core::rng::SplitMix64;
use ltree_core::LabelingScheme;
use std::time::{Duration, Instant};
use xmldb::{Document, XmlNodeId, XmlTree};

use crate::gen::{book_catalog_profile, generate};
use crate::workload::WorkloadReport;

/// Largest subtree (in elements) a delete edit may remove; bigger
/// targets are skipped so the session edits the document instead of
/// draining it.
const MAX_DELETE_SUBTREE: usize = 24;

/// Build a deterministic small fragment of `k ≥ 1` elements: each new
/// element attaches under a random earlier one, giving shallow, bushy
/// subtrees like real clipboard content.
fn make_fragment(rng: &mut SplitMix64, k: usize) -> XmlTree {
    let (mut frag, root) = XmlTree::with_root("frag");
    let mut nodes = vec![root];
    for _ in 1..k {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        let id = frag
            .add_child(parent, "item")
            .expect("fragment nodes are live");
        nodes.push(id);
    }
    frag
}

/// Run a seeded document-edit session against `scheme`: a
/// [`book_catalog_profile`] document of `elements` elements is bulk
/// loaded, then fragment insertions (with occasional subtree deletions)
/// are applied through the `Document` splice paths until at least
/// `ops_items` scheme items (2 per element) have been inserted.
///
/// Stats cover the edit session only — the initial load is reset away,
/// as in [`crate::workload::run_workload`]. Returns the report and the
/// scheme (recovered from the document) so callers can read
/// [`ltree_core::Instrumented::stats_breakdown`].
///
/// ```
/// use ltree_core::{LTree, Params};
/// use xmlgen::docedit::run_document_edits;
///
/// let scheme = LTree::new(Params::new(4, 2).unwrap());
/// let (report, _scheme) = run_document_edits(scheme, 100, 200, 7).unwrap();
/// assert!(report.inserted >= 200);
/// assert_eq!(report.workload, "doc-edit");
/// ```
pub fn run_document_edits<S: LabelingScheme>(
    scheme: S,
    elements: usize,
    ops_items: usize,
    seed: u64,
) -> xmldb::error::Result<(WorkloadReport, S)> {
    let mut rng = SplitMix64::new(seed);
    let elements = elements.max(2);
    let tree = generate(&book_catalog_profile(elements), seed);
    let mut doc = Document::from_tree(tree, scheme)?;
    let initial = 2 * doc.element_count();

    // Live elements in a deterministic order; targets are drawn by index.
    let root = doc.tree().root().expect("generated documents have a root");
    let mut live: Vec<XmlNodeId> = doc.tree().all_elements();

    // The load is not part of the measured session.
    doc.reset_scheme_stats();

    let start = Instant::now();
    let mut inserted = 0u64;
    let mut deleted = 0u64;
    while (inserted as usize) < ops_items {
        let try_delete = live.len() > 32 && rng.gen_bool(0.25);
        if try_delete {
            let target = live[rng.gen_range(0..live.len())];
            if target == root {
                continue;
            }
            let subtree = doc.tree().dfs(target)?;
            if subtree.len() > MAX_DELETE_SUBTREE {
                continue; // too big: skip, draw again
            }
            let removed = doc.delete_subtree(target)?;
            debug_assert_eq!(removed, subtree.len());
            let gone: std::collections::HashSet<XmlNodeId> = subtree.into_iter().collect();
            live.retain(|id| !gone.contains(id));
            deleted += 2 * removed as u64;
        } else {
            let k = 1 + rng.gen_range(0..6);
            let fragment = make_fragment(&mut rng, k);
            let parent = live[rng.gen_range(0..live.len())];
            let child_count = doc.tree().child_elements(parent)?.len();
            let index = rng.gen_range(0..child_count + 1);
            let ids = doc.insert_fragment(parent, index, &fragment)?;
            inserted += 2 * ids.len() as u64;
            live.extend(ids);
        }
    }
    let wall = start.elapsed();
    doc.validate()?;

    let stats = doc.scheme().scheme_stats();
    let report = WorkloadReport {
        scheme: doc.scheme().name(),
        workload: "doc-edit",
        initial,
        inserted,
        deleted,
        stats,
        label_space_bits: doc.scheme().label_space_bits(),
        memory_bytes: doc.scheme().memory_bytes(),
        wall,
        // Scheme time is not separable from DOM bookkeeping on this
        // path; the sweep's wall column carries the total.
        scheme_wall: Duration::ZERO,
    };
    Ok((report, doc.into_scheme()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltree_core::{LTree, Params};

    #[test]
    fn sessions_are_deterministic_and_validated() {
        let run = || {
            let (r, s) =
                run_document_edits(LTree::new(Params::new(4, 2).unwrap()), 120, 300, 11).unwrap();
            (r.stats, r.inserted, r.deleted, s.label_space_bits())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same session, same counters");
        assert!(a.1 >= 300, "inserted at least the ops budget");
    }

    #[test]
    fn deletes_happen_and_stats_cover_the_session_only() {
        let (r, _) =
            run_document_edits(LTree::new(Params::new(4, 2).unwrap()), 200, 600, 3).unwrap();
        assert!(r.deleted > 0, "sessions mix in subtree removals");
        assert_eq!(
            r.stats.inserts, r.inserted,
            "stats were reset after the bulk load"
        );
        assert_eq!(r.workload, "doc-edit");
        assert_eq!(r.initial, 2 * 200);
    }

    #[test]
    fn different_schemes_replay_the_same_logical_session() {
        let (a, _) =
            run_document_edits(LTree::new(Params::new(4, 2).unwrap()), 100, 250, 5).unwrap();
        let (b, _) =
            run_document_edits(labeling_baselines::GapLabeling::new(), 100, 250, 5).unwrap();
        assert_eq!(a.inserted, b.inserted);
        assert_eq!(a.deleted, b.deleted);
    }
}
