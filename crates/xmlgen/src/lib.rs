//! # `xmlgen` — synthetic documents and update workloads
//!
//! The 2004 paper has no public corpus; this crate substitutes seeded,
//! reproducible generators standing in for it:
//!
//! * [`gen`] — random XML documents with layered tag vocabularies,
//!   including an XMark-flavoured *auction site* profile and a *book
//!   catalog* profile matching the paper's motivating examples;
//! * [`workload`] — update streams against any
//!   [`ltree_core::LabelingScheme`]: uniform, hotspot, append/prepend,
//!   batch (subtree-shaped) and mixed insert/delete, with a
//!   [`workload::WorkloadReport`] capturing the paper's cost metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod workload;

pub use gen::{auction_profile, book_catalog_profile, generate, uniform_profile, DocProfile};
pub use workload::{run_workload, verify_order, Workload, WorkloadReport};
