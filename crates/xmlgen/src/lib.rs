//! # `xmlgen` — synthetic documents and update workloads
//!
//! The 2004 paper has no public corpus; this crate substitutes seeded,
//! reproducible generators standing in for it:
//!
//! * [`gen`] — random XML documents with layered tag vocabularies,
//!   including an XMark-flavoured *auction site* profile and a *book
//!   catalog* profile matching the paper's motivating examples;
//! * [`workload`] — update streams against any
//!   [`ltree_core::LabelingScheme`]: uniform, hotspot, append/prepend,
//!   batch (subtree-shaped) and mixed insert/delete, with a
//!   [`workload::WorkloadReport`] capturing the paper's cost metrics;
//!   plus replayable [`workload::EditScript`]s — generated once per
//!   (profile, seed), replayed against every scheme as batched splices
//!   (one [`ltree_core::Splice`] per run) or as the per-item reference
//!   loop, which is what the `ltree-bench` scheme×workload sweep drives;
//! * [`docedit`] — document-shaped sessions: seeded fragment
//!   insertions and subtree removals applied through a real
//!   [`xmldb::Document`] (its splice paths), so the sweep also measures
//!   the whole parse → graft → splice funnel.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod docedit;
pub mod gen;
pub mod workload;

pub use gen::{auction_profile, book_catalog_profile, generate, uniform_profile, DocProfile};
pub use workload::{
    generate_edits, run_workload, standard_profiles, verify_order, Edit, EditProfile, EditScript,
    Workload, WorkloadReport,
};
