//! XML serialization (the inverse of [`crate::parser`]).

use crate::dom::{Content, XmlNodeId, XmlTree};
use crate::error::Result;

fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            c => out.push(c),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

fn write_element(
    tree: &XmlTree,
    id: XmlNodeId,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<()> {
    if let Some(step) = indent {
        if depth > 0 {
            out.push('\n');
        }
        out.push_str(&" ".repeat(step * depth));
    }
    out.push('<');
    out.push_str(tree.tag_name(id)?);
    for (name, value) in tree.attrs(id)? {
        out.push(' ');
        out.push_str(name);
        out.push_str("=\"");
        escape_attr(value, out);
        out.push('"');
    }
    let content = tree.content(id)?;
    if content.is_empty() {
        out.push_str("/>");
        return Ok(());
    }
    out.push('>');
    let mut had_child_element = false;
    for c in content {
        match c {
            Content::Text(t) => escape_text(t, out),
            Content::Element(e) => {
                had_child_element = true;
                write_element(tree, *e, out, indent, depth + 1)?;
            }
        }
    }
    if indent.is_some() && had_child_element {
        out.push('\n');
        out.push_str(&" ".repeat(indent.unwrap_or(0) * depth));
    }
    out.push_str("</");
    out.push_str(tree.tag_name(id)?);
    out.push('>');
    Ok(())
}

/// Serialize the tree to a compact string.
pub fn to_string(tree: &XmlTree) -> Result<String> {
    let mut out = String::new();
    if let Some(root) = tree.root() {
        write_element(tree, root, &mut out, None, 0)?;
    }
    Ok(out)
}

/// Serialize with newlines and `indent`-space indentation.
pub fn to_string_pretty(tree: &XmlTree, indent: usize) -> Result<String> {
    let mut out = String::new();
    if let Some(root) = tree.root() {
        write_element(tree, root, &mut out, Some(indent), 0)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn roundtrip_compact() {
        let src = r#"<book year="2004"><title>1 &lt; 2 &amp; 3</title><empty/></book>"#;
        let tree = parse(src).unwrap();
        let out = to_string(&tree).unwrap();
        assert_eq!(out, src);
    }

    #[test]
    fn reparse_of_serialized_is_identical() {
        let src = "<a x=\"q&quot;q\"><b>t1<c/>t2</b><d/></a>";
        let t1 = parse(src).unwrap();
        let s1 = to_string(&t1).unwrap();
        let t2 = parse(&s1).unwrap();
        let s2 = to_string(&t2).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn pretty_has_indentation() {
        let tree = parse("<a><b><c/></b></a>").unwrap();
        let out = to_string_pretty(&tree, 2).unwrap();
        assert!(out.contains("\n  <b>"));
        assert!(out.contains("\n    <c/>"));
        // And it reparses to the same structure.
        let again = parse(&out).unwrap();
        assert_eq!(again.element_count(), 3);
    }

    #[test]
    fn empty_tree_serializes_empty() {
        let tree = XmlTree::new();
        assert_eq!(to_string(&tree).unwrap(), "");
    }
}
