//! Whole-document persistence: XML text plus the L-Tree's structural
//! snapshot.
//!
//! [`ltree_core::snapshot`] stores only the tree *shape* (labels are
//! implicit — the §4.2 observation); this module pairs that with the
//! serialized document so a [`Document<LTree>`] round-trips exactly:
//! same elements, same labels, same slack distribution. A freshly
//! re-parsed document would get *bulk-load* labels instead and lose the
//! update history's hotspot adaptation — the snapshot keeps it.
//!
//! Format: `"LXDC" | version u16 | xml_len u64 | xml bytes | snapshot`.

use ltree_core::snapshot::{self, SnapshotError};
use ltree_core::{LTree, LeafHandle};

use crate::document::Document;
use crate::error::{Result, XmlError};

const MAGIC: &[u8; 4] = b"LXDC";
const VERSION: u16 = 1;

/// Serialize a document (XML text + labeling-structure snapshot).
pub fn save_document(doc: &Document<LTree>) -> Result<Vec<u8>> {
    let xml = crate::serializer::to_string(doc.tree())?;
    let snap = snapshot::save(doc.scheme());
    let mut out = Vec::with_capacity(4 + 2 + 8 + xml.len() + snap.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(xml.len() as u64).to_le_bytes());
    out.extend_from_slice(xml.as_bytes());
    out.extend_from_slice(&snap);
    Ok(out)
}

fn corrupt(msg: impl Into<String>) -> XmlError {
    XmlError::Parse {
        line: 0,
        col: 0,
        msg: msg.into(),
    }
}

/// Restore a document saved with [`save_document`]. Every element gets
/// back the exact `(begin, end)` labels it had, tombstone slack included.
pub fn load_document(bytes: &[u8]) -> Result<Document<LTree>> {
    if bytes.len() < 14 || &bytes[..4] != MAGIC {
        return Err(corrupt("not a persisted document (bad magic)"));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(corrupt(format!("unsupported document version {version}")));
    }
    let xml_len = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes")) as usize;
    let rest = &bytes[14..];
    if rest.len() < xml_len {
        return Err(corrupt("truncated document payload"));
    }
    let (xml_bytes, snap) = rest.split_at(xml_len);
    let xml = std::str::from_utf8(xml_bytes).map_err(|_| corrupt("document text is not UTF-8"))?;
    let tree = crate::parser::parse(xml)?;
    let (scheme, leaves) =
        snapshot::load(snap).map_err(|e: SnapshotError| corrupt(e.to_string()))?;
    // Live leaves in document order pair 1:1 with the document's tags;
    // tombstones are departed elements' slots and stay unbound.
    let live: Vec<LeafHandle> = leaves
        .into_iter()
        .filter(|&l| !scheme.is_deleted(l).unwrap_or(true))
        .map(|l| LeafHandle(l.to_u64()))
        .collect();
    Document::bind_existing(tree, scheme, &live)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::XmlTree;
    use ltree_core::Params;

    fn edited_document() -> Document<LTree> {
        let mut doc = Document::parse_str(
            "<catalog><book><title>t1</title></book><book><title>t2</title></book></catalog>",
            LTree::new(Params::new(4, 2).unwrap()),
        )
        .unwrap();
        let root = doc.tree().root().unwrap();
        // Hotspot edits: the label distribution becomes update-shaped.
        let (mut frag, fr) = XmlTree::with_root("chapter");
        frag.add_child(fr, "para").unwrap();
        for i in 0..40 {
            let book = doc.tree().child_elements(root).unwrap()[i % 2];
            doc.insert_fragment(book, 0, &frag).unwrap();
        }
        // And a deletion: tombstones must survive persistence.
        let victim = doc.tree().child_elements(root).unwrap()[1];
        let victim_child = doc.tree().child_elements(victim).unwrap()[0];
        doc.delete_subtree(victim_child).unwrap();
        doc
    }

    fn spans_by_path(doc: &Document<LTree>) -> Vec<(String, u128, u128)> {
        doc.tree()
            .all_elements()
            .into_iter()
            .map(|id| {
                let (b, e) = doc.span(id).unwrap();
                (doc.tree().tag_name(id).unwrap().to_owned(), b, e)
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_labels_exactly() {
        let doc = edited_document();
        let bytes = save_document(&doc).unwrap();
        let loaded = load_document(&bytes).unwrap();
        assert_eq!(
            spans_by_path(&loaded),
            spans_by_path(&doc),
            "exact labels, slack included"
        );
        assert_eq!(
            loaded.scheme().len(),
            doc.scheme().len(),
            "tombstones preserved"
        );
        assert_eq!(loaded.scheme().live_len(), doc.scheme().live_len());
        loaded.validate().unwrap();
    }

    #[test]
    fn loaded_document_keeps_editing() {
        let doc = edited_document();
        let mut loaded = load_document(&save_document(&doc).unwrap()).unwrap();
        let root = loaded.tree().root().unwrap();
        for i in 0..20 {
            loaded.insert_element(root, i, "addendum").unwrap();
        }
        loaded.validate().unwrap();
        loaded.scheme().check_invariants().unwrap();
    }

    #[test]
    fn reparse_would_lose_slack_but_snapshot_does_not() {
        // The point of persisting the structure: a fresh bulk load gives
        // different labels than the update-shaped tree.
        let doc = edited_document();
        let fresh = Document::parse_str(
            &crate::serializer::to_string(doc.tree()).unwrap(),
            LTree::new(Params::new(4, 2).unwrap()),
        )
        .unwrap();
        assert_ne!(
            spans_by_path(&fresh),
            spans_by_path(&doc),
            "bulk-load labels differ from update-shaped labels"
        );
    }

    #[test]
    fn corrupt_payloads_error_cleanly() {
        let doc = edited_document();
        let good = save_document(&doc).unwrap();
        assert!(load_document(&[]).is_err());
        assert!(load_document(&good[..20]).is_err());
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(load_document(&bad).is_err());
        let mut flipped = good.clone();
        let at = flipped.len() - 3; // inside the snapshot -> checksum
        flipped[at] ^= 0x55;
        assert!(load_document(&flipped).is_err());
    }
}
