//! Path expressions and their two evaluators.
//!
//! Grammar (a practical XPath subset):
//!
//! ```text
//! path  := step+
//! step  := ('/' | '//') name
//! name  := tag | '*'
//! ```
//!
//! `/a/b` — child steps from the document root; `//b` — descendant step;
//! `*` — any tag. Two evaluators are provided:
//!
//! * [`Path::eval_navigational`] — pointer-chasing over the DOM, the
//!   ground truth (and the thing the paper wants to *avoid* doing in an
//!   RDBMS, where each step is a self-join on parent ids);
//! * [`Path::eval_labeled`] — per-step sort-merge [`structural
//!   join`](crate::join::structural_join) over `(begin, end, depth)`
//!   labels from the tag index: the paper's "exactly one self-join with
//!   label comparisons as predicates" per axis step.
//!
//! Both return elements in document order; the test-suites assert they
//! agree on randomized documents and after arbitrary updates.

use crate::document::Document;
use crate::dom::XmlNodeId;
use crate::error::{Result, XmlError};
use crate::join::structural_join;
use ltree_core::LabelingScheme;

/// Navigation axis of one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Direct children (`/`).
    Child,
    /// All proper descendants (`//`).
    Descendant,
}

/// One step: an axis plus a tag test (`None` = `*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// Tag name filter; `None` matches any element.
    pub tag: Option<String>,
}

/// A parsed path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    steps: Vec<Step>,
}

impl Path {
    /// Parse a path expression.
    ///
    /// ```
    /// use xmldb::Path;
    /// let p = Path::parse("/book//title").unwrap();
    /// assert_eq!(p.steps().len(), 2);
    /// assert!(Path::parse("book/title").is_err(), "must start with / or //");
    /// ```
    pub fn parse(input: &str) -> Result<Path> {
        let s = input.trim();
        if !s.starts_with('/') {
            return Err(XmlError::PathParse(format!(
                "path must start with '/' or '//': {input:?}"
            )));
        }
        let mut steps = Vec::new();
        let mut rest = s;
        while !rest.is_empty() {
            let axis = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                Axis::Descendant
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                Axis::Child
            } else {
                return Err(XmlError::PathParse(format!("expected '/' before {rest:?}")));
            };
            let end = rest.find('/').unwrap_or(rest.len());
            let name = &rest[..end];
            if name.is_empty() {
                return Err(XmlError::PathParse(format!("empty step name in {input:?}")));
            }
            if name != "*"
                && !name
                    .chars()
                    .all(|c| c.is_alphanumeric() || matches!(c, '-' | '.' | '_' | ':'))
            {
                return Err(XmlError::PathParse(format!("invalid step name {name:?}")));
            }
            steps.push(Step {
                axis,
                tag: if name == "*" {
                    None
                } else {
                    Some(name.to_owned())
                },
            });
            rest = &rest[end..];
        }
        if steps.is_empty() {
            return Err(XmlError::PathParse("empty path".into()));
        }
        Ok(Path { steps })
    }

    /// The parsed steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Ground-truth evaluation by DOM navigation. Results in document
    /// order, each element at most once.
    pub fn eval_navigational<S: LabelingScheme>(
        &self,
        doc: &Document<S>,
    ) -> Result<Vec<XmlNodeId>> {
        let Some(root) = doc.tree().root() else {
            return Ok(Vec::new());
        };
        // Frontier starts as the virtual super-root.
        let mut frontier: Vec<XmlNodeId> = Vec::new();
        for (i, step) in self.steps.iter().enumerate() {
            let sources: Vec<XmlNodeId> = if i == 0 { vec![] } else { frontier.clone() };
            let mut next = Vec::new();
            let matches_tag = |doc: &Document<S>, id: XmlNodeId| -> Result<bool> {
                Ok(match &step.tag {
                    Some(t) => doc.tree().tag_name(id)? == t,
                    None => true,
                })
            };
            if i == 0 {
                match step.axis {
                    Axis::Child => {
                        if matches_tag(doc, root)? {
                            next.push(root);
                        }
                    }
                    Axis::Descendant => {
                        for id in doc.tree().dfs(root)? {
                            if matches_tag(doc, id)? {
                                next.push(id);
                            }
                        }
                    }
                }
            } else {
                for src in sources {
                    match step.axis {
                        Axis::Child => {
                            for c in doc.tree().child_elements(src)? {
                                if matches_tag(doc, c)? {
                                    next.push(c);
                                }
                            }
                        }
                        Axis::Descendant => {
                            for id in doc.tree().dfs(src)? {
                                if id != src && matches_tag(doc, id)? {
                                    next.push(id);
                                }
                            }
                        }
                    }
                }
            }
            // Dedup (descendant steps from nested sources overlap),
            // keeping document order via the begin labels.
            let mut with_key: Vec<(u128, XmlNodeId)> = next
                .into_iter()
                .map(|id| Ok((doc.span(id)?.0, id)))
                .collect::<Result<_>>()?;
            with_key.sort_unstable();
            with_key.dedup();
            frontier = with_key.into_iter().map(|(_, id)| id).collect();
            if frontier.is_empty() {
                break;
            }
        }
        Ok(frontier)
    }

    /// Label-based evaluation: each step is one structural join between
    /// the frontier spans and the tag index (paper, Section 1).
    pub fn eval_labeled<S: LabelingScheme>(&self, doc: &Document<S>) -> Result<Vec<XmlNodeId>> {
        if doc.tree().root().is_none() {
            return Ok(Vec::new());
        }
        let mut frontier = Vec::new();
        for (i, step) in self.steps.iter().enumerate() {
            let candidates = match &step.tag {
                Some(t) => doc.spans_with_tag(t)?,
                None => doc.all_spans()?,
            };
            if i == 0 {
                frontier = match step.axis {
                    Axis::Child => candidates.into_iter().filter(|s| s.depth == 0).collect(),
                    Axis::Descendant => candidates,
                };
            } else {
                let matched = structural_join(&frontier, &candidates, step.axis);
                frontier = matched
                    .into_iter()
                    .map(|id| doc.span_rec(id))
                    .collect::<Result<_>>()?;
            }
            if frontier.is_empty() {
                break;
            }
        }
        Ok(frontier.into_iter().map(|s| s.node).collect())
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for step in &self.steps {
            f.write_str(match step.axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
            })?;
            f.write_str(step.tag.as_deref().unwrap_or("*"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_shapes() {
        let p = Path::parse("/book//title").unwrap();
        assert_eq!(p.steps().len(), 2);
        assert_eq!(p.steps()[0].axis, Axis::Child);
        assert_eq!(p.steps()[0].tag.as_deref(), Some("book"));
        assert_eq!(p.steps()[1].axis, Axis::Descendant);
        assert_eq!(p.to_string(), "/book//title");

        let p = Path::parse("//*").unwrap();
        assert_eq!(p.steps()[0].tag, None);
        assert_eq!(p.to_string(), "//*");
    }

    #[test]
    fn parse_errors() {
        assert!(Path::parse("book").is_err());
        assert!(Path::parse("/").is_err());
        assert!(Path::parse("").is_err());
        assert!(Path::parse("/a//").is_err());
        assert!(Path::parse("/a b").is_err());
    }

    #[test]
    fn deep_paths_parse() {
        let p = Path::parse("/site/regions//item/description").unwrap();
        assert_eq!(p.steps().len(), 4);
    }
}
