//! Region-labeled documents: a DOM bound to a labeling scheme.
//!
//! Every element holds the handles of the two scheme leaves that carry
//! its begin/end tags (Section 2.1 of the paper: "the label of an XML
//! element node is composed by a pair: the numbers of two leaves in the
//! L-Tree which correspond to that XML node's begin tag and end tag").
//! Ancestor–descendant tests become interval containment (Figure 1);
//! subtree insertion maps to one batch leaf insertion (Section 4.1);
//! subtree deletion tombstones leaves without relabeling (Section 2.3).

use std::collections::HashMap;

use crate::dom::{XmlNodeId, XmlTree};
use crate::error::{Result, XmlError};
use crate::join::SpanRec;
use crate::tags::TagId;
use ltree_core::registry::{SchemeConfig, SchemeRegistry};
use ltree_core::{DynScheme, LabelingScheme, LeafHandle, Splice, SpliceBuilder};

#[derive(Debug, Clone, Copy)]
struct NodeMeta {
    begin: LeafHandle,
    end: LeafHandle,
    depth: u32,
}

/// An XML document whose element order is maintained by a labeling
/// scheme `S`. See the [module docs](self).
pub struct Document<S: LabelingScheme> {
    tree: XmlTree,
    scheme: S,
    meta: HashMap<XmlNodeId, NodeMeta>,
    tag_index: HashMap<TagId, Vec<XmlNodeId>>,
}

impl<S: LabelingScheme> Document<S> {
    /// Bind a parsed tree to a (fresh, empty) labeling scheme — the
    /// **bulk path**: the begin/end tags of all elements are loaded with
    /// a single scheme call (`bulk_build`), never one insert per tag.
    /// Subsequent subtree insertions go through one
    /// [`Splice`] per sibling run (see
    /// [`insert_fragments`](Self::insert_fragments)), so the per-item
    /// relabeling cost the
    /// paper's amortized analysis beats never reappears at load time.
    /// [`from_tree_incremental`](Self::from_tree_incremental) keeps the
    /// per-node path for comparison.
    pub fn from_tree(tree: XmlTree, mut scheme: S) -> Result<Self> {
        let count = tree.element_count();
        let handles = scheme.bulk_build(2 * count)?;
        let mut doc = Document {
            tree,
            scheme,
            meta: HashMap::new(),
            tag_index: HashMap::new(),
        };
        if let Some(root) = doc.tree.root() {
            doc.assign_handles(root, 0, &handles)?;
        }
        let ids = doc.tree.all_elements();
        for id in ids {
            let tag = doc.tree.tag(id)?;
            doc.tag_index.entry(tag).or_default().push(id);
        }
        Ok(doc)
    }

    /// Parse text and bind it in one step (the bulk path).
    pub fn parse_str(xml: &str, scheme: S) -> Result<Self> {
        Self::from_tree(crate::parser::parse(xml)?, scheme)
    }

    /// Bind a parsed tree by labeling **one tag at a time** — the
    /// historical per-node path: `insert_first` for the root's begin tag,
    /// then one `insert_after` per remaining tag in document order
    /// (`2n − 1` single inserts for `n` elements). Kept as the reference
    /// the splice-driven bulk path is measured against; the conformance
    /// suite asserts both paths produce identical documents.
    pub fn from_tree_incremental(tree: XmlTree, scheme: S) -> Result<Self> {
        let mut doc = Document {
            tree,
            scheme,
            meta: HashMap::new(),
            tag_index: HashMap::new(),
        };
        if let Some(root) = doc.tree.root() {
            enum Ev {
                Enter(XmlNodeId, u32),
                Exit(XmlNodeId),
            }
            let mut stack = vec![Ev::Enter(root, 0)];
            let mut prev: Option<LeafHandle> = None;
            let mut pending: HashMap<XmlNodeId, (LeafHandle, u32)> = HashMap::new();
            while let Some(ev) = stack.pop() {
                match ev {
                    Ev::Enter(id, depth) => {
                        let h = match prev {
                            None => doc.scheme.insert_first()?,
                            Some(p) => doc.scheme.insert_after(p)?,
                        };
                        prev = Some(h);
                        pending.insert(id, (h, depth));
                        stack.push(Ev::Exit(id));
                        let children = doc.tree.child_elements(id)?;
                        for c in children.into_iter().rev() {
                            stack.push(Ev::Enter(c, depth + 1));
                        }
                    }
                    Ev::Exit(id) => {
                        let h = doc
                            .scheme
                            .insert_after(prev.expect("enter precedes exit"))?;
                        prev = Some(h);
                        let (begin, depth) = pending.remove(&id).expect("enter precedes exit");
                        doc.meta.insert(
                            id,
                            NodeMeta {
                                begin,
                                end: h,
                                depth,
                            },
                        );
                    }
                }
            }
        }
        for id in doc.tree.all_elements() {
            let tag = doc.tree.tag(id)?;
            doc.tag_index.entry(tag).or_default().push(id);
        }
        Ok(doc)
    }

    /// Parse text and bind it through the per-node path.
    pub fn parse_str_incremental(xml: &str, scheme: S) -> Result<Self> {
        Self::from_tree_incremental(crate::parser::parse(xml)?, scheme)
    }

    /// The labeling scheme, by value (for rebinding or inspection).
    pub fn into_scheme(self) -> S {
        self.scheme
    }

    /// Bind a tree to a scheme that **already** holds the right leaves —
    /// `live_handles` must be the scheme's live leaves in document order,
    /// exactly two per element. Used when restoring a persisted document
    /// (see [`crate::persist`]) where the scheme state (and thus the
    /// exact labels, slack included) is recovered rather than rebuilt.
    pub fn bind_existing(tree: XmlTree, scheme: S, live_handles: &[LeafHandle]) -> Result<Self> {
        if live_handles.len() != 2 * tree.element_count() {
            return Err(XmlError::Parse {
                line: 0,
                col: 0,
                msg: format!(
                    "{} live leaves cannot label {} elements",
                    live_handles.len(),
                    tree.element_count()
                ),
            });
        }
        let mut doc = Document {
            tree,
            scheme,
            meta: HashMap::new(),
            tag_index: HashMap::new(),
        };
        if let Some(root) = doc.tree.root() {
            doc.assign_handles(root, 0, live_handles)?;
        }
        for id in doc.tree.all_elements() {
            let tag = doc.tree.tag(id)?;
            doc.tag_index.entry(tag).or_default().push(id);
        }
        doc.validate()?;
        Ok(doc)
    }

    /// Verify that the scheme's own cursor order agrees with strictly
    /// increasing labels — a streaming walk, no allocation. Tombstones
    /// (departed elements) are part of the order and are included.
    fn check_scheme_order(&self) -> Result<()> {
        let mut prev: Option<u128> = None;
        for h in self.scheme.cursor() {
            let l = self.scheme.label_of(h)?;
            if let Some(p) = prev {
                if p >= l {
                    return Err(XmlError::Parse {
                        line: 0,
                        col: 0,
                        msg: format!("scheme cursor out of label order ({p} >= {l})"),
                    });
                }
            }
            prev = Some(l);
        }
        Ok(())
    }

    /// Assign begin/end handles (a slice covering exactly the subtree's
    /// `2 × size` tags, in document order) to the subtree at `root`.
    fn assign_handles(
        &mut self,
        root: XmlNodeId,
        root_depth: u32,
        handles: &[LeafHandle],
    ) -> Result<()> {
        enum Ev {
            Enter(XmlNodeId, u32),
            Exit(XmlNodeId),
        }
        let mut stack = vec![Ev::Enter(root, root_depth)];
        let mut cursor = 0usize;
        let mut pending: HashMap<XmlNodeId, (LeafHandle, u32)> = HashMap::new();
        while let Some(ev) = stack.pop() {
            match ev {
                Ev::Enter(id, depth) => {
                    let begin = handles[cursor];
                    cursor += 1;
                    pending.insert(id, (begin, depth));
                    stack.push(Ev::Exit(id));
                    let children = self.tree.child_elements(id)?;
                    for c in children.into_iter().rev() {
                        stack.push(Ev::Enter(c, depth + 1));
                    }
                }
                Ev::Exit(id) => {
                    let end = handles[cursor];
                    cursor += 1;
                    let (begin, depth) = pending.remove(&id).expect("enter precedes exit");
                    self.meta.insert(id, NodeMeta { begin, end, depth });
                }
            }
        }
        debug_assert_eq!(cursor, handles.len(), "exactly 2 tags per element");
        Ok(())
    }

    // ------------------------------------------------------------------
    // Read access
    // ------------------------------------------------------------------

    /// The underlying DOM (read-only; mutate through `Document` methods
    /// so labels stay in sync).
    pub fn tree(&self) -> &XmlTree {
        &self.tree
    }

    /// The labeling scheme (for stats and label-space inspection).
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Reset the scheme's cost counters — typically right after a bulk
    /// load, so subsequent [`scheme`](Self::scheme) stats cover edits
    /// only (bulk loading is not an update in the paper's model).
    pub fn reset_scheme_stats(&mut self) {
        self.scheme.reset_scheme_stats();
    }

    /// Number of live elements.
    pub fn element_count(&self) -> usize {
        self.tree.element_count()
    }

    /// The `(begin, end)` region labels of an element.
    pub fn span(&self, id: XmlNodeId) -> Result<(u128, u128)> {
        let meta = self.meta.get(&id).ok_or(XmlError::UnknownNode)?;
        Ok((
            self.scheme.label_of(meta.begin)?,
            self.scheme.label_of(meta.end)?,
        ))
    }

    /// Depth of an element (root = 0) — maintained incrementally.
    pub fn depth(&self, id: XmlNodeId) -> Result<u32> {
        Ok(self.meta.get(&id).ok_or(XmlError::UnknownNode)?.depth)
    }

    /// Full span record for joins.
    pub fn span_rec(&self, id: XmlNodeId) -> Result<SpanRec> {
        let meta = self.meta.get(&id).ok_or(XmlError::UnknownNode)?;
        Ok(SpanRec {
            begin: self.scheme.label_of(meta.begin)?,
            end: self.scheme.label_of(meta.end)?,
            depth: meta.depth,
            node: id,
        })
    }

    /// All elements with the given tag, as span records sorted by begin
    /// label (the "tag index" of the paper's RDBMS story).
    pub fn spans_with_tag(&self, tag: &str) -> Result<Vec<SpanRec>> {
        let Some(tag) = self.tree.tags.get(tag) else {
            return Ok(Vec::new());
        };
        let mut out: Vec<SpanRec> = self
            .tag_index
            .get(&tag)
            .map(|ids| {
                ids.iter()
                    .map(|&id| self.span_rec(id))
                    .collect::<Result<_>>()
            })
            .transpose()?
            .unwrap_or_default();
        out.sort_unstable_by_key(|s| s.begin);
        Ok(out)
    }

    /// Every element as a span record, sorted by begin label.
    pub fn all_spans(&self) -> Result<Vec<SpanRec>> {
        let mut out: Vec<SpanRec> = self
            .meta
            .keys()
            .map(|&id| self.span_rec(id))
            .collect::<Result<_>>()?;
        out.sort_unstable_by_key(|s| s.begin);
        Ok(out)
    }

    /// Interval-containment ancestor test (Figure 1 of the paper): `a` is
    /// an ancestor of `d` iff `begin(a) < begin(d)` and `end(d) < end(a)`.
    pub fn is_ancestor(&self, a: XmlNodeId, d: XmlNodeId) -> Result<bool> {
        let (ab, ae) = self.span(a)?;
        let (db, de) = self.span(d)?;
        Ok(ab < db && de < ae)
    }

    /// All ancestors of `id`, nearest first — answered purely from
    /// labels: ancestors are exactly the elements whose region contains
    /// `id`'s (Section 4.2's "the labels encode all the ancestors").
    pub fn ancestors(&self, id: XmlNodeId) -> Result<Vec<XmlNodeId>> {
        let (b, e) = self.span(id)?;
        let mut out: Vec<SpanRec> = Vec::new();
        for rec in self.all_spans()? {
            if rec.begin < b && e < rec.end {
                out.push(rec);
            }
        }
        // Nearest (deepest) first.
        out.sort_unstable_by_key(|r| std::cmp::Reverse(r.begin));
        Ok(out.into_iter().map(|r| r.node).collect())
    }

    /// Elements entirely *after* `id`'s subtree in document order (the
    /// XPath `following` axis): `begin > end(id)`.
    pub fn following(&self, id: XmlNodeId) -> Result<Vec<XmlNodeId>> {
        let (_, e) = self.span(id)?;
        Ok(self
            .all_spans()?
            .into_iter()
            .filter(|r| r.begin > e)
            .map(|r| r.node)
            .collect())
    }

    /// Elements entirely *before* `id`'s subtree in document order (the
    /// XPath `preceding` axis): `end < begin(id)`.
    pub fn preceding(&self, id: XmlNodeId) -> Result<Vec<XmlNodeId>> {
        let (b, _) = self.span(id)?;
        Ok(self
            .all_spans()?
            .into_iter()
            .filter(|r| r.end < b)
            .map(|r| r.node)
            .collect())
    }

    /// Following siblings of `id` via labels: same parent region, begin
    /// after `id`'s end, depth equal.
    pub fn following_siblings(&self, id: XmlNodeId) -> Result<Vec<XmlNodeId>> {
        let (_, e) = self.span(id)?;
        let depth = self.depth(id)?;
        let parent = self.tree.parent(id)?;
        let bound = match parent {
            Some(p) => self.span(p)?.1,
            None => return Ok(Vec::new()),
        };
        Ok(self
            .all_spans()?
            .into_iter()
            .filter(|r| r.depth == depth && r.begin > e && r.end < bound)
            .map(|r| r.node)
            .collect())
    }

    /// Compare two elements in document order via their begin labels.
    pub fn document_cmp(&self, a: XmlNodeId, b: XmlNodeId) -> Result<std::cmp::Ordering> {
        Ok(self.span(a)?.0.cmp(&self.span(b)?.0))
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Insert `fragment` (a complete tree) as the `index`-th element
    /// child of `parent`. One batch leaf insertion covers the whole
    /// fragment (paper, Section 4.1: "usually, insertions to XML
    /// documents are subtrees"). Returns the new element ids in document
    /// order.
    pub fn insert_fragment(
        &mut self,
        parent: XmlNodeId,
        index: usize,
        fragment: &XmlTree,
    ) -> Result<Vec<XmlNodeId>> {
        Ok(self
            .insert_fragments(parent, index, std::slice::from_ref(fragment))?
            .pop()
            .expect("one fragment in, one id list out"))
    }

    /// Insert several complete trees as consecutive element children of
    /// `parent`, starting at child position `index`. The fragments form
    /// **one sibling run** — their tag sequences concatenate contiguously
    /// after the anchor — so the whole batch is labeled by a *single*
    /// [`Splice::InsertAfter`], assembled with [`SpliceBuilder`], no
    /// matter how many fragments or elements it carries. Returns one id
    /// list per fragment, each in document order.
    pub fn insert_fragments(
        &mut self,
        parent: XmlNodeId,
        index: usize,
        fragments: &[XmlTree],
    ) -> Result<Vec<Vec<XmlNodeId>>> {
        if fragments.is_empty() {
            return Ok(Vec::new());
        }
        // Reject rootless fragments *before* the first graft: grafting is
        // the only per-fragment failure mode, and failing mid-loop would
        // leave earlier fragments in the DOM with no labels.
        for fragment in fragments {
            fragment.root().ok_or(XmlError::UnknownNode)?;
        }
        let parent_meta = *self.meta.get(&parent).ok_or(XmlError::UnknownNode)?;
        let children = self.tree.child_elements(parent)?;
        let idx = index.min(children.len());
        let anchor = if idx == 0 {
            parent_meta.begin
        } else {
            self.meta
                .get(&children[idx - 1])
                .ok_or(XmlError::UnknownNode)?
                .end
        };
        // Graft every fragment into the DOM first, then label the whole
        // sibling run with one splice.
        let mut grafted: Vec<Vec<XmlNodeId>> = Vec::with_capacity(fragments.len());
        let mut builder = SpliceBuilder::new();
        for (i, fragment) in fragments.iter().enumerate() {
            let ids = self.tree.graft(parent, idx + i, fragment)?;
            if i == 0 {
                builder.push_run(anchor, 2 * ids.len());
            } else {
                builder.extend_last(2 * ids.len());
            }
            grafted.push(ids);
        }
        let runs = builder.apply(&mut self.scheme)?;
        let handles = &runs[0];
        let mut offset = 0usize;
        for ids in &grafted {
            let take = 2 * ids.len();
            self.assign_handles(
                ids[0],
                parent_meta.depth + 1,
                &handles[offset..offset + take],
            )?;
            offset += take;
            for &id in ids {
                let tag = self.tree.tag(id)?;
                self.tag_index.entry(tag).or_default().push(id);
            }
        }
        Ok(grafted)
    }

    /// Insert a single fresh element (no children) — the paper's single
    /// node insertion: two leaf insertions.
    pub fn insert_element(
        &mut self,
        parent: XmlNodeId,
        index: usize,
        tag: &str,
    ) -> Result<XmlNodeId> {
        let (frag, _) = XmlTree::with_root(tag);
        Ok(self.insert_fragment(parent, index, &frag)?[0])
    }

    /// Append a text run to an element (text carries no labels).
    pub fn add_text(&mut self, id: XmlNodeId, text: &str) -> Result<()> {
        self.meta.get(&id).ok_or(XmlError::UnknownNode)?;
        self.tree.add_text(id, text)
    }

    /// Move the subtree rooted at `id` to become the `index`-th element
    /// child of `new_parent`. Element ids are preserved; on the labeling
    /// side this is one tombstoning pass (free, §2.3) plus one batch
    /// insertion at the destination (§4.1).
    pub fn move_subtree(
        &mut self,
        id: XmlNodeId,
        new_parent: XmlNodeId,
        index: usize,
    ) -> Result<()> {
        if id == new_parent || self.is_ancestor(id, new_parent)? {
            return Err(XmlError::InvalidMove);
        }
        let order = self.tree.dfs(id)?;
        // Release the old leaves (tombstones only): the subtree's tags
        // are exactly the live leaves between its root's begin and end,
        // so one delete-run splice covers all of them.
        let root_meta = *self.meta.get(&id).ok_or(XmlError::UnknownNode)?;
        let released = self
            .scheme
            .splice(Splice::DeleteRun {
                first: root_meta.begin,
                count: 2 * order.len(),
            })?
            .deleted();
        debug_assert_eq!(released, 2 * order.len(), "run covers the whole subtree");
        for &e in &order {
            self.meta.remove(&e).ok_or(XmlError::UnknownNode)?;
        }
        self.tree.detach_subtree(id)?;
        // Splice at the destination and relabel the moved subtree with
        // one batch of fresh leaves.
        let parent_meta = *self.meta.get(&new_parent).ok_or(XmlError::UnknownNode)?;
        let children = self.tree.child_elements(new_parent)?;
        let idx = index.min(children.len());
        let anchor = if idx == 0 {
            parent_meta.begin
        } else {
            self.meta
                .get(&children[idx - 1])
                .ok_or(XmlError::UnknownNode)?
                .end
        };
        self.tree.attach_subtree(new_parent, idx, id)?;
        let handles = self
            .scheme
            .splice(Splice::InsertAfter {
                anchor,
                count: 2 * order.len(),
            })?
            .into_inserted();
        self.assign_handles(id, parent_meta.depth + 1, &handles)?;
        Ok(())
    }

    /// Delete the subtree rooted at `id` (not the root). The scheme
    /// leaves are tombstoned — no relabeling happens (paper, §2.3) — via
    /// a single delete-run splice over the subtree's contiguous tag run.
    /// Returns the number of elements removed.
    pub fn delete_subtree(&mut self, id: XmlNodeId) -> Result<usize> {
        let root_meta = *self.meta.get(&id).ok_or(XmlError::UnknownNode)?;
        let removed = self.tree.remove_subtree(id)?;
        let released = self
            .scheme
            .splice(Splice::DeleteRun {
                first: root_meta.begin,
                count: 2 * removed.len(),
            })?
            .deleted();
        debug_assert_eq!(released, 2 * removed.len(), "run covers the whole subtree");
        for &e in &removed {
            self.meta.remove(&e).ok_or(XmlError::UnknownNode)?;
        }
        let gone: std::collections::HashSet<XmlNodeId> = removed.iter().copied().collect();
        for ids in self.tag_index.values_mut() {
            ids.retain(|i| !gone.contains(i));
        }
        Ok(removed.len())
    }

    // ------------------------------------------------------------------
    // Consistency checking (tests and experiments)
    // ------------------------------------------------------------------

    /// Verify that labels, depths and the tag index agree with the DOM:
    /// document order by labels equals DFS order; every parent's region
    /// strictly contains its children's; depths match.
    pub fn validate(&self) -> Result<()> {
        let Some(root) = self.tree.root() else {
            return Ok(());
        };
        let order = self.tree.dfs(root)?;
        let mut prev_begin: Option<u128> = None;
        for &id in &order {
            let (b, e) = self.span(id)?;
            if b >= e {
                return Err(XmlError::Parse {
                    line: 0,
                    col: 0,
                    msg: format!("span of {id:?} inverted"),
                });
            }
            if let Some(p) = prev_begin {
                if p >= b {
                    return Err(XmlError::Parse {
                        line: 0,
                        col: 0,
                        msg: "begin labels do not follow document order".into(),
                    });
                }
            }
            prev_begin = Some(b);
            if self.depth(id)? != self.tree.depth(id)? {
                return Err(XmlError::Parse {
                    line: 0,
                    col: 0,
                    msg: format!("depth of {id:?} stale"),
                });
            }
            if let Some(p) = self.tree.parent(id)? {
                let (pb, pe) = self.span(p)?;
                if !(pb < b && e < pe) {
                    return Err(XmlError::Parse {
                        line: 0,
                        col: 0,
                        msg: format!("region of {id:?} not inside its parent"),
                    });
                }
            }
        }
        // Tag index completeness.
        let indexed: usize = self.tag_index.values().map(Vec::len).sum();
        if indexed != order.len() {
            return Err(XmlError::Parse {
                line: 0,
                col: 0,
                msg: format!("tag index covers {indexed} of {} elements", order.len()),
            });
        }
        self.check_scheme_order()
    }
}

/// Registry-based constructors: build the labeling scheme from a spec
/// string (`"ltree(4,2)"`, `"virtual"`, `"gap(64)"`, …) instead of a
/// concrete type, yielding a `Document<Box<dyn DynScheme>>`. The boxed
/// scheme implements the whole trait family, so every `Document` method
/// works unchanged.
impl Document<Box<dyn DynScheme>> {
    /// Bind `tree` to a scheme built by `registry` from `spec`.
    pub fn from_tree_with(
        tree: XmlTree,
        registry: &SchemeRegistry,
        spec: &str,
        config: &SchemeConfig,
    ) -> Result<Self> {
        Self::from_tree(tree, registry.build_with(spec, config)?)
    }

    /// Parse `xml` and bind it to a scheme built by `registry` from
    /// `spec`, in one step.
    pub fn parse_str_with(
        xml: &str,
        registry: &SchemeRegistry,
        spec: &str,
        config: &SchemeConfig,
    ) -> Result<Self> {
        Self::parse_str(xml, registry.build_with(spec, config)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltree_core::{Instrumented, LTree, Params};

    fn doc(xml: &str) -> Document<LTree> {
        Document::parse_str(xml, LTree::new(Params::new(4, 2).unwrap())).unwrap()
    }

    const FIG1: &str = "<book><chapter><title>t</title></chapter><title>top</title></book>";

    #[test]
    fn figure1_regions() {
        // Figure 1 of the paper: book(0,7) chapter(1,4) title(2,3) title(5,6)
        // — our labels differ (L-Tree slack) but containment must match.
        let d = doc(FIG1);
        let root = d.tree().root().unwrap();
        let kids = d.tree().child_elements(root).unwrap();
        let chapter = kids[0];
        let top_title = kids[1];
        let inner_title = d.tree().child_elements(chapter).unwrap()[0];
        assert!(d.is_ancestor(root, chapter).unwrap());
        assert!(d.is_ancestor(root, inner_title).unwrap());
        assert!(d.is_ancestor(chapter, inner_title).unwrap());
        assert!(!d.is_ancestor(chapter, top_title).unwrap());
        assert!(!d.is_ancestor(inner_title, chapter).unwrap());
        d.validate().unwrap();
    }

    #[test]
    fn spans_follow_document_order() {
        let d = doc(FIG1);
        let all = d.all_spans().unwrap();
        assert_eq!(all.len(), 4);
        for w in all.windows(2) {
            assert!(w[0].begin < w[1].begin);
        }
    }

    #[test]
    fn tag_index_lookup() {
        let d = doc(FIG1);
        let titles = d.spans_with_tag("title").unwrap();
        assert_eq!(titles.len(), 2);
        assert!(titles[0].begin < titles[1].begin);
        assert!(d.spans_with_tag("missing").unwrap().is_empty());
    }

    #[test]
    fn insert_element_preserves_order() {
        let mut d = doc(FIG1);
        let root = d.tree().root().unwrap();
        let chapter = d.tree().child_elements(root).unwrap()[0];
        let sect = d.insert_element(chapter, 1, "section").unwrap();
        d.validate().unwrap();
        assert!(d.is_ancestor(chapter, sect).unwrap());
        assert_eq!(d.depth(sect).unwrap(), 2);
        // It landed after the existing title.
        let title = d.tree().child_elements(chapter).unwrap()[0];
        assert_eq!(
            d.document_cmp(title, sect).unwrap(),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn insert_fragment_batches_leaves() {
        let mut d = doc(FIG1);
        let root = d.tree().root().unwrap();
        let (mut frag, fr) = XmlTree::with_root("appendix");
        let s1 = frag.add_child(fr, "section").unwrap();
        frag.add_child(s1, "para").unwrap();
        frag.add_child(fr, "section").unwrap();
        let before = d.scheme().scheme_stats().inserts;
        let ids = d.insert_fragment(root, 2, &frag).unwrap();
        assert_eq!(ids.len(), 4);
        assert_eq!(
            d.scheme().scheme_stats().inserts - before,
            8,
            "2 leaves per element"
        );
        d.validate().unwrap();
        assert!(d.is_ancestor(root, ids[0]).unwrap());
        assert!(d.is_ancestor(ids[0], ids[3]).unwrap());
        assert_eq!(d.depth(ids[2]).unwrap(), 3);
    }

    #[test]
    fn incremental_path_matches_bulk_path() {
        let bulk = doc(FIG1);
        let incr = Document::from_tree_incremental(
            crate::parser::parse(FIG1).unwrap(),
            LTree::new(Params::new(4, 2).unwrap()),
        )
        .unwrap();
        incr.validate().unwrap();
        // Same elements in the same document order on both paths.
        let order = |d: &Document<LTree>| {
            d.all_spans()
                .unwrap()
                .into_iter()
                .map(|s| s.node)
                .collect::<Vec<_>>()
        };
        assert_eq!(order(&bulk), order(&incr));
        assert_eq!(bulk.element_count(), incr.element_count());
    }

    #[test]
    fn insert_fragments_labels_the_run_with_one_splice() {
        use ltree_core::probe::CallCounter;
        let mut d = Document::parse_str(
            FIG1,
            CallCounter::new(LTree::new(Params::new(4, 2).unwrap())),
        )
        .unwrap();
        let root = d.tree().root().unwrap();
        let (mut f1, r1) = XmlTree::with_root("appendix");
        f1.add_child(r1, "section").unwrap();
        let (f2, _) = XmlTree::with_root("index");
        let calls_before = d.scheme().counts().mutation_calls();
        let ids = d.insert_fragments(root, 2, &[f1, f2]).unwrap();
        assert_eq!(
            d.scheme().counts().mutation_calls() - calls_before,
            1,
            "the whole sibling run is one splice"
        );
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0].len(), 2);
        assert_eq!(ids[1].len(), 1);
        d.validate().unwrap();
        // Fragments landed adjacent, in order, at child position 2 and 3.
        let kids = d.tree().child_elements(root).unwrap();
        assert_eq!(kids[2], ids[0][0]);
        assert_eq!(kids[3], ids[1][0]);
        assert!(d.is_ancestor(ids[0][0], ids[0][1]).unwrap());
    }

    #[test]
    fn rootless_fragment_is_rejected_before_any_graft() {
        let mut d = doc(FIG1);
        let root = d.tree().root().unwrap();
        let (valid, _) = XmlTree::with_root("ok");
        let count = d.element_count();
        assert!(matches!(
            d.insert_fragments(root, 0, &[valid, XmlTree::new()]),
            Err(XmlError::UnknownNode)
        ));
        // Nothing was grafted: the document is unchanged and consistent.
        assert_eq!(d.element_count(), count);
        d.validate().unwrap();
    }

    #[test]
    fn subtree_removal_is_one_delete_run() {
        use ltree_core::probe::CallCounter;
        let mut d = Document::parse_str(
            "<r><a><b/><c><d/></c></a><e/></r>",
            CallCounter::new(LTree::new(Params::new(4, 2).unwrap())),
        )
        .unwrap();
        let root = d.tree().root().unwrap();
        let a = d.tree().child_elements(root).unwrap()[0];
        let calls_before = d.scheme().counts().mutation_calls();
        let removed = d.delete_subtree(a).unwrap();
        assert_eq!(removed, 4);
        assert_eq!(
            d.scheme().counts().mutation_calls() - calls_before,
            1,
            "subtree removal is one delete-run splice"
        );
        d.validate().unwrap();
    }

    #[test]
    fn insert_at_front_of_parent() {
        let mut d = doc(FIG1);
        let root = d.tree().root().unwrap();
        let pre = d.insert_element(root, 0, "preface").unwrap();
        d.validate().unwrap();
        let kids = d.tree().child_elements(root).unwrap();
        assert_eq!(kids[0], pre);
        let (rb, _) = d.span(root).unwrap();
        let (pb, _) = d.span(pre).unwrap();
        assert!(rb < pb);
    }

    #[test]
    fn delete_subtree_tombstones() {
        let mut d = doc(FIG1);
        let root = d.tree().root().unwrap();
        let chapter = d.tree().child_elements(root).unwrap()[0];
        let writes_before = d.scheme().scheme_stats().label_writes;
        let removed = d.delete_subtree(chapter).unwrap();
        assert_eq!(removed, 2, "chapter and its title");
        assert_eq!(
            d.scheme().scheme_stats().label_writes,
            writes_before,
            "deletion never writes labels"
        );
        assert_eq!(d.element_count(), 2);
        assert!(d.span(chapter).is_err());
        assert_eq!(d.spans_with_tag("title").unwrap().len(), 1);
        d.validate().unwrap();
    }

    #[test]
    fn deleting_root_is_refused() {
        let mut d = doc(FIG1);
        let root = d.tree().root().unwrap();
        assert!(matches!(
            d.delete_subtree(root),
            Err(XmlError::CannotRemoveRoot)
        ));
    }

    #[test]
    fn heavy_update_storm_stays_consistent() {
        let mut d = doc("<r><a/><b/></r>");
        let root = d.tree().root().unwrap();
        let mut targets = d.tree().child_elements(root).unwrap();
        for i in 0..200 {
            let parent = targets[i % targets.len()];
            let id = d.insert_element(parent, i % 3, "x").unwrap();
            targets.push(id);
            if i % 17 == 0 {
                d.validate().unwrap();
            }
        }
        d.validate().unwrap();
        assert_eq!(d.element_count(), 203);
    }

    #[test]
    fn label_axes_match_dom_truth() {
        let d = doc("<r><a><b/><c/></a><d><e><f/></e></d><g/></r>");
        let all = d.tree().all_elements();
        for &id in &all {
            // ancestors: label answer == parent-chain answer.
            let mut chain = Vec::new();
            let mut cur = d.tree().parent(id).unwrap();
            while let Some(p) = cur {
                chain.push(p);
                cur = d.tree().parent(p).unwrap();
            }
            assert_eq!(d.ancestors(id).unwrap(), chain, "ancestors of {id:?}");
            // following/preceding partition the non-related elements.
            let (b, e) = d.span(id).unwrap();
            for &other in &all {
                let (ob, oe) = d.span(other).unwrap();
                let in_following = d.following(id).unwrap().contains(&other);
                let in_preceding = d.preceding(id).unwrap().contains(&other);
                assert_eq!(in_following, ob > e, "following {other:?} of {id:?}");
                assert_eq!(in_preceding, oe < b, "preceding {other:?} of {id:?}");
            }
        }
        // following_siblings of <a> is [<d>, <g>].
        let root = d.tree().root().unwrap();
        let kids = d.tree().child_elements(root).unwrap();
        assert_eq!(
            d.following_siblings(kids[0]).unwrap(),
            vec![kids[1], kids[2]]
        );
        assert!(d.following_siblings(kids[2]).unwrap().is_empty());
        assert!(d.following_siblings(root).unwrap().is_empty());
    }

    #[test]
    fn move_subtree_preserves_ids_and_order() {
        let mut d = doc(FIG1);
        let root = d.tree().root().unwrap();
        let kids = d.tree().child_elements(root).unwrap();
        let (chapter, top_title) = (kids[0], kids[1]);
        let inner_title = d.tree().child_elements(chapter).unwrap()[0];
        // Move the chapter after the top title (to the end of the book).
        d.move_subtree(chapter, root, 2).unwrap();
        d.validate().unwrap();
        let kids = d.tree().child_elements(root).unwrap();
        assert_eq!(
            kids,
            vec![top_title, chapter],
            "ids preserved, order changed"
        );
        assert!(
            d.is_ancestor(chapter, inner_title).unwrap(),
            "subtree intact"
        );
        assert_eq!(
            d.document_cmp(top_title, inner_title).unwrap(),
            std::cmp::Ordering::Less
        );
        // Move it inside what used to be its sibling.
        d.move_subtree(chapter, top_title, 0).unwrap();
        d.validate().unwrap();
        assert!(d.is_ancestor(top_title, inner_title).unwrap());
        assert_eq!(d.depth(inner_title).unwrap(), 3);
    }

    #[test]
    fn move_into_self_is_rejected() {
        let mut d = doc(FIG1);
        let root = d.tree().root().unwrap();
        let chapter = d.tree().child_elements(root).unwrap()[0];
        let inner = d.tree().child_elements(chapter).unwrap()[0];
        assert!(matches!(
            d.move_subtree(chapter, inner, 0),
            Err(XmlError::InvalidMove)
        ));
        assert!(matches!(
            d.move_subtree(chapter, chapter, 0),
            Err(XmlError::InvalidMove)
        ));
        d.validate().unwrap();
    }

    #[test]
    fn registry_constructed_documents_work() {
        // Any registered scheme can label a document, picked by name.
        let mut reg = SchemeRegistry::with_builtin();
        ltree_virtual::register(&mut reg);
        labeling_baselines::register(&mut reg);
        let cfg = SchemeConfig::default();
        for spec in [
            "ltree(4,2)",
            "virtual(4,2)",
            "naive",
            "gap(16)",
            "list-label",
        ] {
            let mut d = Document::parse_str_with(FIG1, &reg, spec, &cfg)
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            let root = d.tree().root().unwrap();
            d.insert_element(root, 1, "isbn").unwrap();
            d.validate().unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(d.element_count(), 5, "{spec}");
        }
        assert!(Document::parse_str_with(FIG1, &reg, "no-such-scheme", &cfg).is_err());
    }

    #[test]
    fn works_with_any_scheme() {
        // The document layer is generic; exercise it over the virtual
        // L-Tree and a baseline to pin the contract.
        let v = ltree_virtual::VirtualLTree::new(Params::new(4, 2).unwrap());
        let mut d = Document::parse_str(FIG1, v).unwrap();
        let root = d.tree().root().unwrap();
        d.insert_element(root, 1, "isbn").unwrap();
        d.validate().unwrap();

        let n = labeling_baselines::NaiveLabeling::new();
        let mut d = Document::parse_str(FIG1, n).unwrap();
        let root = d.tree().root().unwrap();
        d.insert_element(root, 0, "isbn").unwrap();
        d.validate().unwrap();
    }
}
