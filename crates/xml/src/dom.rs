//! Arena DOM for ordered XML trees.
//!
//! [`XmlTree`] stores elements in a slab (`Vec<Option<Element>>`) with
//! ordered mixed content (child elements and text runs). It doubles as a
//! *fragment* builder: the subtree-insertion API of
//! [`crate::Document`] grafts one tree into another.

use crate::error::{Result, XmlError};
use crate::tags::{TagId, TagInterner};

/// Identifier of one element within its [`XmlTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XmlNodeId(pub(crate) u32);

impl XmlNodeId {
    /// Raw slot index (stable while the element is live) — used by
    /// downstream systems that need a plain integer key, e.g. relational
    /// shredding.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuild an id from [`raw`](Self::raw). The caller is responsible
    /// for it referring to a live element; all accessors re-validate.
    pub fn from_raw(raw: u32) -> Self {
        XmlNodeId(raw)
    }
}

/// Ordered content of an element.
#[derive(Debug, Clone)]
pub enum Content {
    /// A child element.
    Element(XmlNodeId),
    /// A text run.
    Text(String),
}

#[derive(Debug, Clone)]
pub(crate) struct Element {
    pub tag: TagId,
    pub parent: Option<XmlNodeId>,
    pub content: Vec<Content>,
    pub attrs: Vec<(String, String)>,
}

/// An ordered XML tree (or fragment). See the [module docs](self).
#[derive(Debug, Default, Clone)]
pub struct XmlTree {
    slots: Vec<Option<Element>>,
    root: Option<XmlNodeId>,
    pub(crate) tags: TagInterner,
    n_live: usize,
}

impl XmlTree {
    /// An empty tree (no root yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// A tree with a fresh root element.
    pub fn with_root(tag: &str) -> (Self, XmlNodeId) {
        let mut t = Self::new();
        let root = t.create_root(tag).expect("fresh tree has no root");
        (t, root)
    }

    /// Create the root element. Fails if a root already exists.
    pub fn create_root(&mut self, tag: &str) -> Result<XmlNodeId> {
        if self.root.is_some() {
            return Err(XmlError::Parse {
                line: 0,
                col: 0,
                msg: "document already has a root".into(),
            });
        }
        let tag = self.tags.intern(tag);
        let id = self.alloc(Element {
            tag,
            parent: None,
            content: Vec::new(),
            attrs: Vec::new(),
        });
        self.root = Some(id);
        Ok(id)
    }

    /// The root element, if any.
    pub fn root(&self) -> Option<XmlNodeId> {
        self.root
    }

    /// Number of live elements.
    pub fn element_count(&self) -> usize {
        self.n_live
    }

    /// True when the tree has no elements.
    pub fn is_empty(&self) -> bool {
        self.n_live == 0
    }

    fn alloc(&mut self, e: Element) -> XmlNodeId {
        self.n_live += 1;
        // Reuse the first free slot, if any (slabs stay compact for the
        // fragment-sized trees this is used on).
        if let Some(pos) = self.slots.iter().position(Option::is_none) {
            self.slots[pos] = Some(e);
            XmlNodeId(pos as u32)
        } else {
            self.slots.push(Some(e));
            XmlNodeId(self.slots.len() as u32 - 1)
        }
    }

    pub(crate) fn element(&self, id: XmlNodeId) -> Result<&Element> {
        self.slots
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(XmlError::UnknownNode)
    }

    pub(crate) fn element_mut(&mut self, id: XmlNodeId) -> Result<&mut Element> {
        self.slots
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(XmlError::UnknownNode)
    }

    /// True if `id` refers to a live element.
    pub fn contains(&self, id: XmlNodeId) -> bool {
        self.element(id).is_ok()
    }

    /// Append a child element under `parent`.
    pub fn add_child(&mut self, parent: XmlNodeId, tag: &str) -> Result<XmlNodeId> {
        self.element(parent)?;
        let tag = self.tags.intern(tag);
        let id = self.alloc(Element {
            tag,
            parent: Some(parent),
            content: Vec::new(),
            attrs: Vec::new(),
        });
        self.element_mut(parent)?.content.push(Content::Element(id));
        Ok(id)
    }

    /// Append a text run under `parent`.
    pub fn add_text(&mut self, parent: XmlNodeId, text: &str) -> Result<()> {
        self.element_mut(parent)?
            .content
            .push(Content::Text(text.to_owned()));
        Ok(())
    }

    /// Set (or add) an attribute.
    pub fn set_attr(&mut self, id: XmlNodeId, name: &str, value: &str) -> Result<()> {
        let e = self.element_mut(id)?;
        if let Some(pair) = e.attrs.iter_mut().find(|(n, _)| n == name) {
            pair.1 = value.to_owned();
        } else {
            e.attrs.push((name.to_owned(), value.to_owned()));
        }
        Ok(())
    }

    /// Attribute value by name.
    pub fn attr(&self, id: XmlNodeId, name: &str) -> Result<Option<&str>> {
        Ok(self
            .element(id)?
            .attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str()))
    }

    /// All attributes, in document order.
    pub fn attrs(&self, id: XmlNodeId) -> Result<&[(String, String)]> {
        Ok(&self.element(id)?.attrs)
    }

    /// Tag name of an element.
    pub fn tag_name(&self, id: XmlNodeId) -> Result<&str> {
        Ok(self.tags.resolve(self.element(id)?.tag))
    }

    /// Interned tag of an element.
    pub fn tag(&self, id: XmlNodeId) -> Result<TagId> {
        Ok(self.element(id)?.tag)
    }

    /// Parent element.
    pub fn parent(&self, id: XmlNodeId) -> Result<Option<XmlNodeId>> {
        Ok(self.element(id)?.parent)
    }

    /// Ordered mixed content.
    pub fn content(&self, id: XmlNodeId) -> Result<&[Content]> {
        Ok(&self.element(id)?.content)
    }

    /// Child *elements* only, in order.
    pub fn child_elements(&self, id: XmlNodeId) -> Result<Vec<XmlNodeId>> {
        Ok(self
            .element(id)?
            .content
            .iter()
            .filter_map(|c| match c {
                Content::Element(e) => Some(*e),
                Content::Text(_) => None,
            })
            .collect())
    }

    /// Concatenated text content directly under `id` (not recursive).
    pub fn text_of(&self, id: XmlNodeId) -> Result<String> {
        let mut out = String::new();
        for c in &self.element(id)?.content {
            if let Content::Text(t) = c {
                out.push_str(t);
            }
        }
        Ok(out)
    }

    /// All live elements of the subtree rooted at `id`, in document
    /// (pre-)order.
    pub fn dfs(&self, id: XmlNodeId) -> Result<Vec<XmlNodeId>> {
        self.element(id)?;
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            out.push(cur);
            let children = self.child_elements(cur)?;
            for c in children.into_iter().rev() {
                stack.push(c);
            }
        }
        Ok(out)
    }

    /// All live elements in document order (empty if no root).
    pub fn all_elements(&self) -> Vec<XmlNodeId> {
        match self.root {
            Some(r) => self.dfs(r).expect("root is live"),
            None => Vec::new(),
        }
    }

    /// Depth of an element (root = 0).
    pub fn depth(&self, id: XmlNodeId) -> Result<u32> {
        let mut d = 0;
        let mut cur = self.element(id)?.parent;
        while let Some(p) = cur {
            d += 1;
            cur = self.element(p)?.parent;
        }
        Ok(d)
    }

    /// Copy the whole `fragment` (which must have a root) under
    /// `parent` as its `index`-th *element* child. Returns the new ids of
    /// the grafted elements in document (pre-)order.
    pub fn graft(
        &mut self,
        parent: XmlNodeId,
        index: usize,
        fragment: &XmlTree,
    ) -> Result<Vec<XmlNodeId>> {
        self.element(parent)?;
        let frag_root = fragment.root().ok_or(XmlError::UnknownNode)?;
        let order = fragment.dfs(frag_root)?;
        // First pass: allocate ids in document order.
        let mut map = std::collections::HashMap::with_capacity(order.len());
        for &old in &order {
            let e = fragment.element(old)?;
            let tag = self.tags.intern(fragment.tags.resolve(e.tag));
            let id = self.alloc(Element {
                tag,
                parent: None,
                content: Vec::new(),
                attrs: e.attrs.clone(),
            });
            map.insert(old, id);
        }
        // Second pass: wire parents and content.
        for &old in &order {
            let new_id = map[&old];
            let old_e = fragment.element(old)?;
            let new_content: Vec<Content> = old_e
                .content
                .iter()
                .map(|c| match c {
                    Content::Element(e) => Content::Element(map[e]),
                    Content::Text(t) => Content::Text(t.clone()),
                })
                .collect();
            let parent_id = match old_e.parent {
                Some(p) => Some(map[&p]),
                None => Some(parent),
            };
            let e = self.element_mut(new_id)?;
            e.content = new_content;
            e.parent = parent_id;
        }
        // Splice the fragment root into the parent's content at the
        // position of its index-th element child.
        let new_root = map[&frag_root];
        let content_pos = self.element_position(parent, index)?;
        self.element_mut(parent)?
            .content
            .insert(content_pos, Content::Element(new_root));
        Ok(order.into_iter().map(|old| map[&old]).collect())
    }

    /// Content position of the `index`-th element child (or end).
    fn element_position(&self, parent: XmlNodeId, index: usize) -> Result<usize> {
        let content = &self.element(parent)?.content;
        let mut seen = 0usize;
        for (pos, c) in content.iter().enumerate() {
            if matches!(c, Content::Element(_)) {
                if seen == index {
                    return Ok(pos);
                }
                seen += 1;
            }
        }
        Ok(content.len())
    }

    /// Detach the subtree rooted at `id` from its parent **without
    /// freeing** any element — the pair of
    /// [`attach_subtree`](Self::attach_subtree) used by subtree moves.
    /// The detached nodes
    /// stay live (ids valid) but unreachable from the root.
    pub fn detach_subtree(&mut self, id: XmlNodeId) -> Result<()> {
        let parent = self.element(id)?.parent.ok_or(XmlError::CannotRemoveRoot)?;
        let content = &mut self.element_mut(parent)?.content;
        let pos = content
            .iter()
            .position(|c| matches!(c, Content::Element(e) if *e == id))
            .expect("child listed under its parent");
        content.remove(pos);
        self.element_mut(id)?.parent = None;
        Ok(())
    }

    /// Re-attach a subtree previously removed with
    /// [`detach_subtree`](Self::detach_subtree) as the `index`-th element
    /// child of `parent`.
    pub fn attach_subtree(&mut self, parent: XmlNodeId, index: usize, id: XmlNodeId) -> Result<()> {
        if self.element(id)?.parent.is_some() {
            return Err(XmlError::UnknownNode); // still attached elsewhere
        }
        self.element(parent)?;
        let pos = self.element_position(parent, index)?;
        self.element_mut(parent)?
            .content
            .insert(pos, Content::Element(id));
        self.element_mut(id)?.parent = Some(parent);
        Ok(())
    }

    /// Detach and free the subtree rooted at `id` (not the tree root).
    /// Returns the removed elements in document order.
    pub fn remove_subtree(&mut self, id: XmlNodeId) -> Result<Vec<XmlNodeId>> {
        let parent = self.element(id)?.parent.ok_or(XmlError::CannotRemoveRoot)?;
        let order = self.dfs(id)?;
        // Detach from the parent's content.
        let content = &mut self.element_mut(parent)?.content;
        let pos = content
            .iter()
            .position(|c| matches!(c, Content::Element(e) if *e == id))
            .expect("child listed under its parent");
        content.remove(pos);
        // Free the slots.
        for &e in &order {
            self.slots[e.0 as usize] = None;
            self.n_live -= 1;
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (XmlTree, XmlNodeId, XmlNodeId, XmlNodeId) {
        let (mut t, root) = XmlTree::with_root("book");
        let ch = t.add_child(root, "chapter").unwrap();
        t.add_text(ch, "intro ").unwrap();
        let title = t.add_child(ch, "title").unwrap();
        t.add_text(title, "L-Trees").unwrap();
        t.set_attr(root, "year", "2004").unwrap();
        (t, root, ch, title)
    }

    #[test]
    fn build_and_navigate() {
        let (t, root, ch, title) = sample();
        assert_eq!(t.element_count(), 3);
        assert_eq!(t.tag_name(root).unwrap(), "book");
        assert_eq!(t.parent(title).unwrap(), Some(ch));
        assert_eq!(t.parent(root).unwrap(), None);
        assert_eq!(t.child_elements(ch).unwrap(), vec![title]);
        assert_eq!(t.text_of(title).unwrap(), "L-Trees");
        assert_eq!(t.attr(root, "year").unwrap(), Some("2004"));
        assert_eq!(t.attr(root, "missing").unwrap(), None);
        assert_eq!(t.depth(title).unwrap(), 2);
        assert_eq!(t.dfs(root).unwrap(), vec![root, ch, title]);
    }

    #[test]
    fn single_root_enforced() {
        let (mut t, _root, ..) = sample();
        assert!(t.create_root("again").is_err());
    }

    #[test]
    fn graft_fragment() {
        let (mut t, root, ch, _title) = sample();
        let (mut frag, fr) = XmlTree::with_root("appendix");
        frag.add_child(fr, "note").unwrap();
        let new_ids = t.graft(root, 1, &frag).unwrap();
        assert_eq!(new_ids.len(), 2);
        assert_eq!(t.tag_name(new_ids[0]).unwrap(), "appendix");
        let children = t.child_elements(root).unwrap();
        assert_eq!(children, vec![ch, new_ids[0]]);
        assert_eq!(t.parent(new_ids[1]).unwrap(), Some(new_ids[0]));
        assert_eq!(t.element_count(), 5);
    }

    #[test]
    fn graft_at_front() {
        let (mut t, root, ch, _) = sample();
        let (frag, _) = XmlTree::with_root("preface");
        let ids = t.graft(root, 0, &frag).unwrap();
        assert_eq!(t.child_elements(root).unwrap(), vec![ids[0], ch]);
    }

    #[test]
    fn remove_subtree_frees_slots() {
        let (mut t, root, ch, title) = sample();
        let removed = t.remove_subtree(ch).unwrap();
        assert_eq!(removed, vec![ch, title]);
        assert_eq!(t.element_count(), 1);
        assert!(!t.contains(ch));
        assert!(!t.contains(title));
        assert!(t.child_elements(root).unwrap().is_empty());
        assert!(matches!(
            t.remove_subtree(root),
            Err(XmlError::CannotRemoveRoot)
        ));
        // Slot reuse keeps the arena compact.
        let again = t.add_child(root, "chapter").unwrap();
        assert!(t.contains(again));
    }

    #[test]
    fn stale_ids_rejected() {
        let (mut t, _root, ch, title) = sample();
        t.remove_subtree(ch).unwrap();
        assert!(matches!(t.tag_name(title), Err(XmlError::UnknownNode)));
    }
}
