//! Stack-based structural join over region labels.
//!
//! The paper's query story (Section 1): with order-preserving `(begin,
//! end)` labels, "the ancestor-descendant queries can be processed by
//! exactly one self-join with label comparisons as predicates". This
//! module is that join, in its classic stack-merge form (cf. the holistic
//! twig-join line of work the paper cites): both inputs sorted by begin
//! label, one linear pass, `O(|A| + |D| + matches)`.

use crate::dom::XmlNodeId;
use crate::query::Axis;

/// One element's region: `(begin, end)` labels plus depth and identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// Label of the begin tag.
    pub begin: u128,
    /// Label of the end tag.
    pub end: u128,
    /// Depth in the document (root = 0) — what makes the child axis a
    /// label-only test (`containment ∧ depth+1`).
    pub depth: u32,
    /// The element this span belongs to.
    pub node: XmlNodeId,
}

/// Join candidate descendants against candidate ancestors.
///
/// Both slices must be sorted by `begin` (the tag-index accessors of
/// [`crate::Document`] produce exactly that). Returns the matching
/// *descendant-side* elements in document order, each at most once.
pub fn structural_join(
    ancestors: &[SpanRec],
    descendants: &[SpanRec],
    axis: Axis,
) -> Vec<XmlNodeId> {
    debug_assert!(ancestors.windows(2).all(|w| w[0].begin < w[1].begin));
    debug_assert!(descendants.windows(2).all(|w| w[0].begin < w[1].begin));
    let mut out = Vec::new();
    let mut stack: Vec<SpanRec> = Vec::new();
    let mut ai = 0usize;
    for d in descendants {
        // Open every ancestor that starts before this descendant.
        while ai < ancestors.len() && ancestors[ai].begin < d.begin {
            let a = ancestors[ai];
            ai += 1;
            // Close finished ancestors first.
            while let Some(top) = stack.last() {
                if top.end < a.begin {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(a);
        }
        // Close ancestors that end before this descendant starts.
        while let Some(top) = stack.last() {
            if top.end < d.begin {
                stack.pop();
            } else {
                break;
            }
        }
        // The stack now holds exactly the candidate ancestors whose
        // region contains d.begin, nested (depths strictly increase).
        let matched = match axis {
            Axis::Descendant => stack
                .last()
                .map(|a| d.begin > a.begin && d.end < a.end)
                .unwrap_or(false),
            Axis::Child => {
                // Depths along the (nested) stack strictly increase, so
                // scan from the deepest entry and stop once too shallow.
                d.depth > 0
                    && stack
                        .iter()
                        .rev()
                        .take_while(|a| a.depth + 1 >= d.depth)
                        .any(|a| a.depth + 1 == d.depth && d.begin > a.begin && d.end < a.end)
            }
        };
        if matched {
            out.push(d.node);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(begin: u128, end: u128, depth: u32, id: u32) -> SpanRec {
        SpanRec {
            begin,
            end,
            depth,
            node: XmlNodeId(id),
        }
    }

    #[test]
    fn descendant_axis_containment() {
        // A(0,13) { B(1,9) { C(3,4) } D(10,12) }  — the paper's Figure 2 doc.
        let ancestors = vec![span(1, 9, 1, 1)]; // B
        let descendants = vec![span(3, 4, 2, 2), span(10, 12, 1, 3)]; // C, D
        let got = structural_join(&ancestors, &descendants, Axis::Descendant);
        assert_eq!(got, vec![XmlNodeId(2)], "only C is inside B");
    }

    #[test]
    fn child_axis_requires_depth_adjacency() {
        // A(0,20) { B(1,10) { C(2,3) } }  — C is a descendant of A but
        // a child only of B.
        let a = span(0, 20, 0, 0);
        let b = span(1, 10, 1, 1);
        let c = span(2, 3, 2, 2);
        assert_eq!(
            structural_join(&[a, b], &[c], Axis::Descendant),
            vec![XmlNodeId(2)]
        );
        assert_eq!(structural_join(&[b], &[c], Axis::Child), vec![XmlNodeId(2)]);
        assert_eq!(
            structural_join(&[a], &[c], Axis::Child),
            Vec::<XmlNodeId>::new()
        );
    }

    #[test]
    fn siblings_do_not_match() {
        let a = span(1, 9, 1, 1);
        let sibling = span(10, 12, 1, 2);
        assert!(structural_join(&[a], &[sibling], Axis::Descendant).is_empty());
    }

    #[test]
    fn many_nested_levels() {
        // a(0,99) > b(1,50) > c(2,40) > d(3,4)
        let spans = [
            span(0, 99, 0, 0),
            span(1, 50, 1, 1),
            span(2, 40, 2, 2),
            span(3, 4, 3, 3),
        ];
        let got = structural_join(&spans[..3], &[spans[3]], Axis::Descendant);
        assert_eq!(got, vec![XmlNodeId(3)]);
        let got = structural_join(&[spans[0]], &spans[1..], Axis::Descendant);
        assert_eq!(got.len(), 3, "all of b, c, d are inside a");
    }

    #[test]
    fn empty_inputs() {
        assert!(structural_join(&[], &[span(1, 2, 1, 0)], Axis::Descendant).is_empty());
        assert!(structural_join(&[span(1, 2, 1, 0)], &[], Axis::Descendant).is_empty());
    }

    #[test]
    fn interleaved_regions_stress() {
        // Ancestors: [0,9], [10,19], [20,29]; descendants inside each.
        let ancestors: Vec<SpanRec> = (0..3)
            .map(|i| span(i * 10, i * 10 + 9, 1, i as u32))
            .collect();
        let descendants: Vec<SpanRec> = (0..3)
            .map(|i| span(i * 10 + 2, i * 10 + 3, 2, 100 + i as u32))
            .collect();
        let got = structural_join(&ancestors, &descendants, Axis::Descendant);
        assert_eq!(got.len(), 3);
    }
}
