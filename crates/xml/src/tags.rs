//! Tag-name interning. The paper recommends clustering XML nodes by tag
//! (Section 3.1, citing \[17\]); interning makes the tag index a dense map.

use std::collections::HashMap;

/// Interned tag identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u32);

/// A string interner for element names.
#[derive(Debug, Default, Clone)]
pub struct TagInterner {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

impl TagInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.map.get(name) {
            return TagId(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), id);
        TagId(id)
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.map.get(name).copied().map(TagId)
    }

    /// The name behind an id.
    pub fn resolve(&self, id: TagId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = TagInterner::new();
        let a = t.intern("book");
        let b = t.intern("title");
        let a2 = t.intern("book");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "book");
        assert_eq!(t.resolve(b), "title");
        assert_eq!(t.get("book"), Some(a));
        assert_eq!(t.get("nope"), None);
        assert_eq!(t.len(), 2);
    }
}
