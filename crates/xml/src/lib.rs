//! # `xmldb` — the XML substrate of the L-Tree reproduction
//!
//! The paper's setting is an XML database: documents are ordered trees
//! whose begin/end tags form a linear list, region labels `(begin, end)`
//! make ancestor–descendant queries a pair of label comparisons
//! (Figure 1), and updates must maintain those labels — the L-Tree's job.
//!
//! This crate supplies everything around the labeling scheme, built from
//! scratch:
//!
//! * [`parser`] — a small, dependency-free XML parser (elements,
//!   attributes, text, comments, CDATA, processing instructions, entity
//!   references) with line/column error reporting;
//! * [`dom`] — an arena DOM ([`XmlTree`]) with fragment building and
//!   grafting, used both for documents and for insertion fragments;
//! * [`serializer`] — back to text, with escaping and pretty-printing;
//! * [`document`] — [`Document<S>`]: a DOM bound to any scheme of the
//!   ordered-labeling trait family ([`ltree_core::LabelingScheme`]);
//!   every element carries the labels of its begin/end tags, maintained
//!   across subtree insertion/deletion. Schemes can be picked at runtime
//!   by name through `Document::parse_str_with` and a
//!   [`ltree_core::registry::SchemeRegistry`];
//! * [`query`] — a path-expression engine (`/a/b//c`, `//title`, `*`)
//!   with two interchangeable evaluators: *navigational* (pointer
//!   chasing, the ground truth) and *label-based* (sort-merge structural
//!   joins over `(begin, end, depth)` — the paper's "exactly one
//!   self-join with label comparisons as predicates");
//! * [`join`] — the stack-based structural join itself;
//! * [`persist`] — whole-document persistence (XML text + the labeling
//!   structure's snapshot, so labels round-trip exactly).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod document;
pub mod dom;
pub mod error;
pub mod join;
pub mod parser;
pub mod persist;
pub mod query;
pub mod serializer;
pub mod tags;

pub use document::Document;
pub use dom::{Content, XmlNodeId, XmlTree};
pub use error::XmlError;
pub use join::SpanRec;
pub use parser::parse;
pub use persist::{load_document, save_document};
pub use query::{Axis, Path};
pub use serializer::{to_string, to_string_pretty};
pub use tags::TagId;
