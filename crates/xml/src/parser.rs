//! A from-scratch, dependency-free XML parser.
//!
//! Supports the subset needed for realistic document workloads: elements,
//! attributes (single/double quoted), text with the five predefined
//! entities plus numeric character references, comments, CDATA sections,
//! processing instructions, and a skipped DOCTYPE. Namespaces are treated
//! lexically (`ns:name` is just a name). Errors carry line/column.

use crate::dom::XmlTree;
use crate::error::{Result, XmlError};

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            bytes: s.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(XmlError::Parse {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.peek() {
            Some(got) if got == b => {
                self.bump();
                Ok(())
            }
            Some(got) => self.err(format!("expected '{}', found '{}'", b as char, got as char)),
            None => self.err(format!("expected '{}', found end of input", b as char)),
        }
    }

    /// Consume everything until (and including) `pat`.
    fn skip_until(&mut self, pat: &str) -> Result<()> {
        while self.pos < self.bytes.len() {
            if self.starts_with(pat) {
                self.bump_n(pat.len());
                return Ok(());
            }
            self.bump();
        }
        self.err(format!("unterminated construct, expected '{pat}'"))
    }

    fn name(&mut self) -> Result<String> {
        let start = self.pos;
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() || b == b'_' || b == b':' => {
                self.bump();
            }
            _ => return self.err("expected a name"),
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b':') {
                self.bump();
            } else {
                break;
            }
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("name bytes are ASCII")
            .to_owned())
    }

    /// Decode an entity reference at the current position (after '&').
    fn entity(&mut self) -> Result<char> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                let body = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| XmlError::Parse {
                        line: self.line,
                        col: self.col,
                        msg: "bad entity".into(),
                    })?
                    .to_owned();
                self.bump();
                return match body.as_str() {
                    "lt" => Ok('<'),
                    "gt" => Ok('>'),
                    "amp" => Ok('&'),
                    "quot" => Ok('"'),
                    "apos" => Ok('\''),
                    _ if body.starts_with("#x") || body.starts_with("#X") => {
                        let v = u32::from_str_radix(&body[2..], 16)
                            .ok()
                            .and_then(char::from_u32);
                        v.ok_or(())
                            .or_else(|_| self.err(format!("bad character reference &{body};")))
                    }
                    _ if body.starts_with('#') => {
                        let v = body[1..].parse::<u32>().ok().and_then(char::from_u32);
                        v.ok_or(())
                            .or_else(|_| self.err(format!("bad character reference &{body};")))
                    }
                    _ => self.err(format!("unknown entity &{body};")),
                };
            }
            if self.pos - start > 12 {
                break;
            }
            self.bump();
        }
        self.err("unterminated entity reference")
    }

    fn attr_value(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            _ => return self.err("expected a quoted attribute value"),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b) if b == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'&') => {
                    self.bump();
                    out.push(self.entity()?);
                }
                Some(b'<') => return self.err("'<' is not allowed in attribute values"),
                Some(_) => {
                    // Preserve UTF-8: copy the full code point.
                    let start = self.pos;
                    self.bump();
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.bump();
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
                None => return self.err("unterminated attribute value"),
            }
        }
    }
}

/// Parse a complete XML document into an [`XmlTree`].
///
/// ```
/// let tree = xmldb::parse("<book year='2004'><title>L-Trees &amp; order</title></book>").unwrap();
/// let root = tree.root().unwrap();
/// assert_eq!(tree.tag_name(root).unwrap(), "book");
/// assert_eq!(tree.attr(root, "year").unwrap(), Some("2004"));
/// ```
pub fn parse(input: &str) -> Result<XmlTree> {
    let mut cur = Cursor::new(input);
    let mut tree = XmlTree::new();
    let mut stack: Vec<crate::dom::XmlNodeId> = Vec::new();
    let mut text = String::new();
    let mut seen_root = false;

    loop {
        match cur.peek() {
            None => break,
            Some(b'<') => {
                // Flush pending text.
                if let Some(&top) = stack.last() {
                    if !text.is_empty() {
                        if !text.chars().all(char::is_whitespace) {
                            tree.add_text(top, &text)?;
                        }
                        text.clear();
                    }
                } else if !text.trim().is_empty() {
                    return cur.err("text content outside the root element");
                } else {
                    text.clear();
                }

                if cur.starts_with("<!--") {
                    cur.bump_n(4);
                    cur.skip_until("-->")?;
                } else if cur.starts_with("<![CDATA[") {
                    cur.bump_n(9);
                    let start = cur.pos;
                    // CDATA content is literal.
                    while cur.pos < cur.bytes.len() && !cur.starts_with("]]>") {
                        cur.bump();
                    }
                    if cur.pos >= cur.bytes.len() {
                        return cur.err("unterminated CDATA section");
                    }
                    let content =
                        std::str::from_utf8(&cur.bytes[start..cur.pos]).expect("valid UTF-8");
                    match stack.last() {
                        Some(&top) => tree.add_text(top, content)?,
                        None => return cur.err("CDATA outside the root element"),
                    }
                    cur.bump_n(3);
                } else if cur.starts_with("<?") {
                    cur.bump_n(2);
                    cur.skip_until("?>")?;
                } else if cur.starts_with("<!DOCTYPE") || cur.starts_with("<!doctype") {
                    cur.bump_n(9);
                    // Skip to '>' honouring an optional internal subset.
                    let mut depth = 0i32;
                    loop {
                        match cur.bump() {
                            Some(b'[') => depth += 1,
                            Some(b']') => depth -= 1,
                            Some(b'>') if depth <= 0 => break,
                            Some(_) => {}
                            None => return cur.err("unterminated DOCTYPE"),
                        }
                    }
                } else if cur.starts_with("</") {
                    cur.bump_n(2);
                    let name = cur.name()?;
                    cur.skip_ws();
                    cur.expect(b'>')?;
                    match stack.pop() {
                        Some(top) => {
                            // Compare borrowed: close tags are the hottest
                            // token in element-dense documents, and the
                            // open-tag name only needs copying on error.
                            if tree.tag_name(top)? != name {
                                let open = tree.tag_name(top)?.to_owned();
                                return cur.err(format!(
                                    "mismatched close tag </{name}>, open element is <{open}>"
                                ));
                            }
                        }
                        None => {
                            return cur.err(format!("close tag </{name}> with no open element"))
                        }
                    }
                } else {
                    // Open tag.
                    cur.bump(); // '<'
                    let name = cur.name()?;
                    let id = match stack.last() {
                        Some(&top) => tree.add_child(top, &name)?,
                        None => {
                            if seen_root {
                                return cur.err("multiple root elements");
                            }
                            seen_root = true;
                            tree.create_root(&name)?
                        }
                    };
                    // Attributes.
                    loop {
                        cur.skip_ws();
                        match cur.peek() {
                            Some(b'>') => {
                                cur.bump();
                                stack.push(id);
                                break;
                            }
                            Some(b'/') => {
                                cur.bump();
                                cur.expect(b'>')?;
                                break; // self-closing: do not push
                            }
                            Some(_) => {
                                let attr = cur.name()?;
                                cur.skip_ws();
                                cur.expect(b'=')?;
                                cur.skip_ws();
                                let value = cur.attr_value()?;
                                tree.set_attr(id, &attr, &value)?;
                            }
                            None => return cur.err("unterminated open tag"),
                        }
                    }
                }
            }
            Some(b'&') => {
                cur.bump();
                text.push(cur.entity()?);
            }
            Some(_) => {
                let start = cur.pos;
                cur.bump();
                while cur.pos < cur.bytes.len()
                    && cur.bytes[cur.pos] != b'<'
                    && cur.bytes[cur.pos] != b'&'
                {
                    cur.bump();
                }
                text.push_str(
                    std::str::from_utf8(&cur.bytes[start..cur.pos]).expect("valid UTF-8"),
                );
            }
        }
    }

    if let Some(&top) = stack.last() {
        let name = tree.tag_name(top)?.to_owned();
        return cur.err(format!("unclosed element <{name}>"));
    }
    if !text.trim().is_empty() {
        return cur.err("text content after the root element");
    }
    if tree.root().is_none() {
        return cur.err("document has no root element");
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_document() {
        let t = parse("<a/>").unwrap();
        assert_eq!(t.element_count(), 1);
        assert_eq!(t.tag_name(t.root().unwrap()).unwrap(), "a");
    }

    #[test]
    fn nested_structure_and_text() {
        let t =
            parse("<book><chapter>one<title>T</title></chapter><title>top</title></book>").unwrap();
        let root = t.root().unwrap();
        let kids = t.child_elements(root).unwrap();
        assert_eq!(kids.len(), 2);
        assert_eq!(t.tag_name(kids[0]).unwrap(), "chapter");
        assert_eq!(t.text_of(kids[0]).unwrap(), "one");
        assert_eq!(t.text_of(kids[1]).unwrap(), "top");
    }

    #[test]
    fn attributes_both_quotes_and_entities() {
        let t = parse(r#"<a x="1 &lt; 2" y='say &quot;hi&quot;'/>"#).unwrap();
        let r = t.root().unwrap();
        assert_eq!(t.attr(r, "x").unwrap(), Some("1 < 2"));
        assert_eq!(t.attr(r, "y").unwrap(), Some(r#"say "hi""#));
    }

    #[test]
    fn entities_in_text() {
        let t = parse("<a>&lt;tag&gt; &amp; &#65;&#x42;</a>").unwrap();
        assert_eq!(t.text_of(t.root().unwrap()).unwrap(), "<tag> & AB");
    }

    #[test]
    fn comments_pi_doctype_cdata() {
        let t = parse(
            "<?xml version=\"1.0\"?><!DOCTYPE book [<!ENTITY x \"y\">]>\n<book><!-- note --><![CDATA[1 < 2 & 3]]></book>",
        )
        .unwrap();
        assert_eq!(t.text_of(t.root().unwrap()).unwrap(), "1 < 2 & 3");
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let t = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        let root = t.root().unwrap();
        assert_eq!(
            t.content(root).unwrap().len(),
            2,
            "only the two elements remain"
        );
    }

    #[test]
    fn error_mismatched_tags() {
        let e = parse("<a><b></a></b>").unwrap_err();
        match e {
            XmlError::Parse { msg, .. } => assert!(msg.contains("mismatched"), "{msg}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_unclosed() {
        assert!(matches!(parse("<a><b>"), Err(XmlError::Parse { .. })));
    }

    #[test]
    fn error_multiple_roots() {
        let e = parse("<a/><b/>").unwrap_err();
        match e {
            XmlError::Parse { msg, .. } => assert!(msg.contains("multiple root")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_text_outside_root() {
        assert!(parse("hello<a/>").is_err());
        assert!(parse("<a/>world").is_err());
    }

    #[test]
    fn error_positions_are_tracked() {
        let e = parse("<a>\n<a hm></a></a>").unwrap_err();
        match e {
            XmlError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unicode_text_roundtrips() {
        let t = parse("<a attr='héllo'>mötörhead 😀</a>").unwrap();
        let r = t.root().unwrap();
        assert_eq!(t.text_of(r).unwrap(), "mötörhead 😀");
        assert_eq!(t.attr(r, "attr").unwrap(), Some("héllo"));
    }

    #[test]
    fn unknown_entity_is_an_error() {
        assert!(parse("<a>&nope;</a>").is_err());
    }
}
