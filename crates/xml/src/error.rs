//! Errors for the XML substrate.

use ltree_core::LTreeError;

/// Everything that can go wrong in `xmldb`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Malformed document text.
    Parse {
        /// 1-based line of the offending byte.
        line: u32,
        /// 1-based column of the offending byte.
        col: u32,
        /// What was wrong.
        msg: String,
    },
    /// Malformed path expression.
    PathParse(String),
    /// An [`crate::XmlNodeId`] that does not refer to a live element.
    UnknownNode,
    /// The operation would detach the document root.
    CannotRemoveRoot,
    /// A subtree cannot be moved into itself (or onto itself).
    InvalidMove,
    /// An error bubbled up from the labeling scheme.
    Label(LTreeError),
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::Parse { line, col, msg } => {
                write!(f, "XML parse error at {line}:{col}: {msg}")
            }
            XmlError::PathParse(msg) => write!(f, "path parse error: {msg}"),
            XmlError::UnknownNode => write!(f, "node id does not refer to a live element"),
            XmlError::CannotRemoveRoot => write!(f, "the document root cannot be removed"),
            XmlError::InvalidMove => write!(f, "a subtree cannot be moved into itself"),
            XmlError::Label(e) => write!(f, "labeling scheme error: {e}"),
        }
    }
}

impl std::error::Error for XmlError {}

impl From<LTreeError> for XmlError {
    fn from(e: LTreeError) -> Self {
        XmlError::Label(e)
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, XmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = XmlError::Parse {
            line: 3,
            col: 7,
            msg: "unexpected '<'".into(),
        };
        assert_eq!(e.to_string(), "XML parse error at 3:7: unexpected '<'");
        let e: XmlError = LTreeError::UnknownHandle.into();
        assert!(e.to_string().contains("labeling scheme error"));
    }
}
