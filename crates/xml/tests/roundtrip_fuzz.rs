//! Randomized roundtrip tests: serializer ∘ parser is the identity on
//! the DOM, for arbitrary generated trees (structure, attributes, text
//! with meta-characters, unicode). Recipes come from the workspace's
//! seeded [`ltree_core::rng::SplitMix64`]; failures reproduce from the
//! printed seed.

use ltree_core::rng::SplitMix64;
use xmldb::{parse, to_string, to_string_pretty, XmlTree};

const TAGS: &[&str] = &["a", "b", "c", "item", "ns:elem", "x-y", "_private", "d.e"];
const ATTRS: &[&str] = &["id", "class", "data-x", "xml:lang"];
// Every metacharacter the escapers must handle.
const TEXT_PARTS: &[&str] = &["<", ">", "&", "\"", "'", "plain ", "ünïcödé 🚀", "]]>"];

fn random_text(rng: &mut SplitMix64) -> String {
    let n = rng.gen_range(1..5);
    (0..n)
        .map(|_| TEXT_PARTS[rng.gen_range(0..TEXT_PARTS.len())])
        .collect()
}

/// Build a random tree deterministically from the seed.
fn random_tree(rng: &mut SplitMix64) -> XmlTree {
    let (mut tree, root) = XmlTree::with_root("root");
    let mut ids = vec![root];
    for _ in 0..rng.gen_range(0..40) {
        let parent = ids[rng.gen_range(0..ids.len())];
        let id = tree
            .add_child(parent, TAGS[rng.gen_range(0..TAGS.len())])
            .unwrap();
        if rng.gen_bool(0.5) {
            let t = random_text(rng);
            if !t.trim().is_empty() {
                tree.add_text(id, &t).unwrap();
            }
        }
        ids.push(id);
    }
    for _ in 0..rng.gen_range(0..10) {
        let target = ids[rng.gen_range(0..ids.len())];
        let value = random_text(rng);
        tree.set_attr(target, ATTRS[rng.gen_range(0..ATTRS.len())], &value)
            .unwrap();
    }
    tree
}

fn doms_equal(a: &XmlTree, b: &XmlTree) -> bool {
    // Structural comparison via canonical serialization.
    to_string(a).unwrap() == to_string(b).unwrap()
}

#[test]
fn serialize_parse_roundtrip() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed);
        let tree = random_tree(&mut rng);
        let text = to_string(&tree).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(back.element_count(), tree.element_count(), "seed {seed}");
        assert!(
            doms_equal(&tree, &back),
            "seed {seed}: roundtrip changed the DOM:\n{text}"
        );
    }
}

#[test]
fn pretty_roundtrip_preserves_structure() {
    // Pretty-printing inserts whitespace-only text, which the parser
    // drops — element structure and attributes must survive.
    for seed in 100..148u64 {
        let mut rng = SplitMix64::new(seed);
        let tree = random_tree(&mut rng);
        let pretty = to_string_pretty(&tree, 2).unwrap();
        let back = parse(&pretty).unwrap();
        assert_eq!(back.element_count(), tree.element_count(), "seed {seed}");
        // Tag sequence in document order is preserved.
        let tags = |t: &XmlTree| -> Vec<String> {
            t.all_elements()
                .iter()
                .map(|&id| t.tag_name(id).unwrap().to_owned())
                .collect()
        };
        assert_eq!(tags(&tree), tags(&back), "seed {seed}");
    }
}

#[test]
fn parser_never_panics_on_noise() {
    // Arbitrary near-XML byte soup must error gracefully, not panic.
    const SOUP: &[u8] = b"<>&;abcxyz\"'=/ ";
    for seed in 200..264u64 {
        let mut rng = SplitMix64::new(seed);
        let len = rng.gen_range(0..120);
        let noise: String = (0..len)
            .map(|_| SOUP[rng.gen_range(0..SOUP.len())] as char)
            .collect();
        let _ = parse(&noise);
    }
}
