//! Property tests: serializer ∘ parser is the identity on the DOM, for
//! arbitrary generated trees (structure, attributes, text with
//! meta-characters, unicode).

use proptest::prelude::*;
use xmldb::{parse, to_string, to_string_pretty, XmlTree};

/// A recipe for building a random tree deterministically.
#[derive(Debug, Clone)]
struct Recipe {
    /// (parent index among already-created elements, tag pick, text pick)
    nodes: Vec<(usize, u8, Option<String>)>,
    attrs: Vec<(usize, u8, String)>,
}

fn tag_name(pick: u8) -> &'static str {
    const TAGS: &[&str] = &["a", "b", "c", "item", "ns:elem", "x-y", "_private", "d.e"];
    TAGS[pick as usize % TAGS.len()]
}

fn attr_name(pick: u8) -> &'static str {
    const ATTRS: &[&str] = &["id", "class", "data-x", "xml:lang"];
    ATTRS[pick as usize % ATTRS.len()]
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Include every metacharacter the escapers must handle.
    proptest::collection::vec(
        prop_oneof![
            Just("<".to_string()),
            Just(">".to_string()),
            Just("&".to_string()),
            Just("\"".to_string()),
            Just("'".to_string()),
            Just("plain ".to_string()),
            Just("ünïcödé 🚀".to_string()),
            Just("]]>".to_string()),
        ],
        1..5,
    )
    .prop_map(|parts| parts.concat())
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    let node = (0usize..64, any::<u8>(), proptest::option::of(text_strategy()));
    let attr = (0usize..64, any::<u8>(), text_strategy());
    (proptest::collection::vec(node, 0..40), proptest::collection::vec(attr, 0..10))
        .prop_map(|(nodes, attrs)| Recipe { nodes, attrs })
}

fn build(recipe: &Recipe) -> XmlTree {
    let (mut tree, root) = XmlTree::with_root("root");
    let mut ids = vec![root];
    for (parent_pick, tag, text) in &recipe.nodes {
        let parent = ids[parent_pick % ids.len()];
        let id = tree.add_child(parent, tag_name(*tag)).unwrap();
        if let Some(t) = text {
            if !t.trim().is_empty() {
                tree.add_text(id, t).unwrap();
            }
        }
        ids.push(id);
    }
    for (target_pick, name, value) in &recipe.attrs {
        let target = ids[target_pick % ids.len()];
        tree.set_attr(target, attr_name(*name), value).unwrap();
    }
    tree
}

fn doms_equal(a: &XmlTree, b: &XmlTree) -> bool {
    // Structural comparison via canonical serialization.
    to_string(a).unwrap() == to_string(b).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn serialize_parse_roundtrip(recipe in recipe_strategy()) {
        let tree = build(&recipe);
        let text = to_string(&tree).unwrap();
        let back = parse(&text).unwrap();
        prop_assert_eq!(back.element_count(), tree.element_count());
        prop_assert!(doms_equal(&tree, &back), "roundtrip changed the DOM:\n{}", text);
    }

    #[test]
    fn pretty_roundtrip_preserves_structure(recipe in recipe_strategy()) {
        // Pretty-printing inserts whitespace-only text, which the parser
        // drops — element structure and attributes must survive.
        let tree = build(&recipe);
        let pretty = to_string_pretty(&tree, 2).unwrap();
        let back = parse(&pretty).unwrap();
        prop_assert_eq!(back.element_count(), tree.element_count());
        // Tag sequence in document order is preserved.
        let tags = |t: &XmlTree| -> Vec<String> {
            t.all_elements().iter().map(|&id| t.tag_name(id).unwrap().to_owned()).collect()
        };
        prop_assert_eq!(tags(&tree), tags(&back));
    }

    #[test]
    fn parser_never_panics_on_noise(noise in "[<>&;a-z\"'=/ ]{0,120}") {
        // Arbitrary near-XML byte soup must error gracefully, not panic.
        let _ = parse(&noise);
    }
}
