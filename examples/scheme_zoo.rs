//! The scheme zoo: every registered labeling scheme over one workload.
//!
//! All schemes are constructed **by name through the registry** — no
//! concrete scheme type appears below. Registering a new scheme (see
//! `SchemeRegistry::register`) adds it to this sweep automatically.
//!
//! ```sh
//! cargo run --release --example scheme_zoo
//! cargo run --release --example scheme_zoo -- "ltree(16,4)" "gap(1024)"
//! ```

use ltree::gen::{run_workload, Workload};
use ltree::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5_000usize;
    let ops = 5_000usize;
    let registry = default_registry();

    // Sweep the given specs, or a default zoo covering all five schemes.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let specs: Vec<String> = if args.is_empty() {
        vec![
            "ltree(4,2)".into(),
            "ltree(16,4)".into(),
            "virtual(4,2)".into(),
            "list-label".into(),
            "gap(64)".into(),
            "naive".into(),
        ]
    } else {
        args
    };

    println!("Registered schemes:");
    for (name, summary) in registry.summaries() {
        println!("  {name:14} {summary}");
    }

    println!("\nHotspot workload: n = {n}, {ops} inserts, 90% into the first 5%:\n");
    println!("  spec            writes/op    cost/op   bits   live items");
    let workload = Workload::Hotspot {
        hot_fraction: 0.05,
        hot_weight: 0.9,
    };
    for spec in &specs {
        let mut scheme = registry.build(spec)?;
        let report = run_workload(&mut scheme, workload, n, ops, 7)?;
        println!(
            "  {spec:14} {:>9.2}  {:>9.2}   {:>4}   {:>8}",
            report.amortized_label_writes(),
            report.amortized_cost(),
            report.label_space_bits,
            scheme.live_len(),
        );
    }

    // The typed batch API, through the same trait objects: splice a run
    // in, stream it back off the cursor, splice a run out.
    let mut scheme = registry.build("ltree(4,2)")?;
    let handles = scheme.bulk_build(8)?;
    let inserted = scheme
        .splice(Splice::InsertAfter {
            anchor: handles[3],
            count: 5,
        })?
        .into_inserted();
    println!(
        "\nSpliced {} items after #3 of 8; order via the cursor:",
        inserted.len()
    );
    let labels: Vec<u128> = scheme
        .cursor()
        .map(|h| scheme.label_of(h).expect("live"))
        .collect();
    println!("  labels: {labels:?}");
    let removed = scheme
        .splice(Splice::DeleteRun {
            first: inserted[0],
            count: 5,
        })?
        .deleted();
    println!(
        "  deleted the same run again: {removed} items, {} live",
        scheme.live_len()
    );
    Ok(())
}
