//! Quickstart: the L-Tree as an order-maintenance structure.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ltree::{LTree, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's example parameters: f = 4, s = 2 (Figure 2).
    // Splits carve an overfull region into s = 2 half-full binary
    // subtrees; labels live in base f+1 = 5.
    let params = Params::new(4, 2)?;
    println!(
        "L-Tree with {params}: arity {}, label base {}",
        params.arity(),
        params.base()
    );

    // Bulk load the eight tags of `<A><B><C/></B><D/></A>`.
    let (mut tree, leaves) = LTree::bulk_load(params, 8)?;
    let names = ["<A>", "<B>", "<C>", "</C>", "</B>", "<D>", "</D>", "</A>"];
    println!("\nAfter bulk load (height {}):", tree.height());
    for (name, leaf) in names.iter().zip(&leaves) {
        println!("  {name:5} -> label {}", tree.label(*leaf)?);
    }

    // Insert a new element <E/> between <C> and </C>: two leaf inserts.
    let e_begin = tree.insert_after(leaves[2])?;
    let e_end = tree.insert_after(e_begin)?;
    println!("\nInserted <E/> inside <C>:");
    println!("  <E>   -> label {}", tree.label(e_begin)?);
    println!("  </E>  -> label {}", tree.label(e_end)?);

    // Order queries are label comparisons.
    assert!(tree.label(leaves[2])? < tree.label(e_begin)?);
    assert!(tree.label(e_end)? < tree.label(leaves[3])?);
    println!("\nDocument order after the insertion:");
    let labels: Vec<u128> = tree
        .leaves()
        .map(|l| tree.label(l).unwrap().get())
        .collect();
    println!("  {labels:?}");

    // Hammer one spot; the L-Tree splits locally and stays balanced.
    let mut anchor = e_begin;
    for _ in 0..500 {
        anchor = tree.insert_after(anchor)?;
    }
    tree.check_invariants().expect("structure is sound");
    let stats = tree.stats();
    println!("\nAfter 502 single insertions at one hotspot:");
    println!("  height               : {}", tree.height());
    println!("  label space          : {} bits", tree.label_space_bits());
    println!("  splits               : {}", stats.splits);
    println!("  root rebuilds        : {}", stats.root_rebuilds);
    println!(
        "  cascade splits       : {} (Proposition 3 says always 0)",
        stats.cascade_splits
    );
    println!("  amortized relabels/op: {:.2}", stats.amortized_relabels());
    println!(
        "  amortized cost/op    : {:.2} node accesses",
        stats.amortized_cost()
    );

    // Deletion is a tombstone: no labels move.
    let before: Vec<u128> = tree
        .leaves()
        .map(|l| tree.label(l).unwrap().get())
        .collect();
    tree.delete(leaves[5])?;
    let after: Vec<u128> = tree
        .leaves()
        .map(|l| tree.label(l).unwrap().get())
        .collect();
    assert_eq!(before, after);
    println!("\nDeleted <D> — zero labels changed (tombstone semantics).");
    Ok(())
}
