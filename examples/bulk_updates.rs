//! Batch (subtree) insertion — paper, Section 4.1.
//!
//! "Usually, insertions to XML documents are subtrees … the larger the
//! size of the inserting subtree, the lower the amortized cost each
//! inserted node needs to pay."
//!
//! ```sh
//! cargo run --release --example bulk_updates
//! ```

use ltree::cost_model;
use ltree::{LTree, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(4, 2)?;
    let n = 50_000usize;
    let total = 16_384usize; // leaves inserted per configuration

    println!("Inserting {total} leaves into an n = {n} L-Tree {params},");
    println!("as batches of k consecutive leaves at random anchors:\n");
    println!("      k   label writes/leaf   cost/leaf   model bound   splits");

    for k in [1usize, 4, 16, 64, 256, 1024, 4096] {
        let (mut tree, leaves) = LTree::bulk_load(params, n)?;
        let mut anchors = leaves;
        let mut x = 0xdeadbeefcafef00du64;
        let mut inserted = 0usize;
        while inserted < total {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let i = (x % anchors.len() as u64) as usize;
            let batch = tree.insert_many_after(anchors[i], k.min(total - inserted))?;
            inserted += batch.len();
            // Keep anchors spread out: remember only the batch head.
            anchors.push(batch[0]);
        }
        tree.check_invariants().expect("sound after batches");
        let s = tree.stats();
        let writes = s.leaf_label_writes as f64 / inserted as f64;
        let cost = s.amortized_cost();
        let model = cost_model::batch_amortized_cost(4.0, 2.0, (n + total) as f64, k as f64);
        println!(
            "  {k:>5}   {writes:>17.2}   {cost:>9.2}   {model:>11.1}   {:>6}",
            s.splits
        );
    }

    println!("\nThe amortized cost falls as k grows — but only logarithmically,");
    println!("exactly as §4.1 predicts (the split charges still apply above the");
    println!("subtree's own height h₀ ≈ log_a k).");
    Ok(())
}
