//! An editable XML document over the L-Tree: parse, query, update,
//! re-query — the full paper scenario.
//!
//! ```sh
//! cargo run --example xml_editing
//! ```

use ltree::prelude::*;
use ltree::xml::XmlTree;

const CATALOG: &str = r#"<catalog>
  <book year="2004">
    <title>L-Trees in practice</title>
    <chapter><title>Labeling</title></chapter>
    <chapter><title>Splitting</title></chapter>
  </book>
  <book year="2002">
    <title>Dynamic XML</title>
    <chapter><title>Updates</title></chapter>
  </book>
</catalog>"#;

fn show_titles<S: ltree::LabelingScheme>(doc: &Document<S>, label: &str) {
    let path = Path::parse("/catalog//title").expect("valid path");
    let nav = path.eval_navigational(doc).expect("eval");
    let lab = path.eval_labeled(doc).expect("eval");
    assert_eq!(nav, lab, "both evaluators agree");
    println!("{label}: {} titles via one structural join", lab.len());
    for id in lab {
        let (b, e) = doc.span(id).expect("labeled");
        println!(
            "  ({b:>6}, {e:>6})  {}",
            doc.tree().text_of(id).expect("live")
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The scheme is picked by registry spec — swap "ltree(4,2)" for
    // "virtual(4,2)", "gap(64)" or "list-label" and everything below
    // works unchanged.
    let mut doc = Document::parse_str(CATALOG, Scheme::build("ltree(4,2)")?)?;
    println!(
        "Parsed catalog: {} elements (scheme: {})\n",
        doc.element_count(),
        doc.scheme().name()
    );
    show_titles(&doc, "Initial document");

    // Ancestor tests are two label comparisons.
    let root = doc.tree().root().expect("root exists");
    let first_book = doc.tree().child_elements(root)?[0];
    let some_title = Path::parse("//chapter/title")?.eval_labeled(&doc)?[0];
    println!(
        "\nIs book #1 an ancestor of that chapter title? {} (two label comparisons)",
        doc.is_ancestor(first_book, some_title)?
    );

    // Insert a whole appendix subtree in ONE batch leaf insertion
    // (paper §4.1: subtree insertions amortize better than singles).
    let (mut frag, fr) = XmlTree::with_root("book");
    frag.set_attr(fr, "year", "2026")?;
    let t = frag.add_child(fr, "title")?;
    frag.add_text(t, "The Reproduction")?;
    let ch = frag.add_child(fr, "chapter")?;
    let ct = frag.add_child(ch, "title")?;
    frag.add_text(ct, "Experiments")?;
    let inserted = doc.insert_fragment(root, 1, &frag)?;
    println!("\nInserted a {}-element book as one batch;", inserted.len());
    show_titles(&doc, "After subtree insertion");

    // Hotspot editing inside one chapter.
    let chapter = doc.tree().child_elements(first_book)?[1];
    for i in 0..25 {
        let sec = doc.insert_element(chapter, i, "section")?;
        let st = doc.insert_element(sec, 0, "title")?;
        doc.add_text(st, &format!("Section {i}"))?;
    }
    doc.validate()?;
    show_titles(&doc, "\nAfter 25 hotspot section insertions");

    // Delete the oldest book: tombstones only, labels of the rest frozen.
    let writes_before = doc.scheme().scheme_stats().label_writes;
    let books = doc.tree().child_elements(root)?;
    let removed = doc.delete_subtree(*books.last().expect("non-empty"))?;
    println!(
        "\nDeleted the 2002 book ({} elements) — label writes during delete: {}",
        removed,
        doc.scheme().scheme_stats().label_writes - writes_before
    );
    doc.validate()?;

    println!("\nScheme stats for the whole session:");
    let s = doc.scheme().scheme_stats();
    println!("  inserts: {}, deletes: {}", s.inserts, s.deletes);
    println!(
        "  label writes: {}, relabel events: {}",
        s.label_writes, s.relabel_events
    );
    println!("  label space: {} bits", doc.scheme().label_space_bits());
    println!(
        "\nFinal document:\n{}",
        ltree::xml::to_string_pretty(doc.tree(), 2)?
    );
    Ok(())
}
