//! An outline editor on `OrderedList`: order maintenance beyond XML.
//!
//! The L-Tree solves the classic ordered-list maintenance problem — this
//! example uses it as the backbone of a collaborative outline editor:
//! O(1) "which item is first?" answers, stable item ids across arbitrary
//! edits, batch paste, and crash recovery via structural snapshots.
//!
//! ```sh
//! cargo run --example collaborative_outline
//! ```

use ltree::prelude::*;
use ltree::snapshot;

fn print_outline(list: &OrderedList<String, LTree>) {
    for (id, text) in list.iter() {
        println!("  [{:>8}] {}", list.label(id).unwrap(), text);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scheme = LTree::new(Params::new(8, 2)?);
    let (mut outline, ids) = OrderedList::bulk_load(
        scheme,
        vec![
            "1. Introduction".to_string(),
            "2. The L-Tree".to_string(),
            "3. Conclusions".to_string(),
        ],
    )?;
    println!("Initial outline (labels are the order keys):");
    print_outline(&outline);

    // Alice inserts an analysis section before the conclusions.
    let analysis = outline.insert_before(ids[2], "2a. Complexity Analysis".to_string())?;
    // Bob pastes a whole block after section 2 — one batch insertion.
    outline.insert_many_after(
        ids[1],
        vec![
            "   2.1 Labeling scheme".to_string(),
            "   2.2 Bulk loading".to_string(),
            "   2.3 Incremental maintenance".to_string(),
        ],
    )?;
    println!("\nAfter two concurrent edit batches:");
    print_outline(&outline);

    // Order queries between any two items are two label reads.
    println!(
        "\nDoes the analysis come before the conclusions? {}",
        outline.cmp(analysis, ids[2])?.is_lt()
    );

    // A frenzy of edits at one hotspot: the L-Tree relabels locally.
    let mut cursor = analysis;
    for i in 0..200 {
        cursor = outline.insert_after(cursor, format!("   note {i}"))?;
    }
    let stats = outline.scheme().scheme_stats();
    println!(
        "\nAfter 200 hotspot edits: {:.1} label writes/op, {} bits per label",
        stats.amortized_label_writes(),
        outline.scheme().label_space_bits()
    );

    // Checkpoint the order structure (labels are implicit in it — the
    // snapshot stores ~2 bytes per item).
    let bytes = snapshot::save(outline.scheme());
    println!(
        "\nSnapshot: {} items -> {} bytes ({}B/item)",
        outline.len(),
        bytes.len(),
        bytes.len() / outline.len().max(1)
    );
    let (recovered, leaves) = snapshot::load(&bytes).expect("snapshot round-trips");
    assert_eq!(recovered.len(), outline.scheme().len());
    println!(
        "Recovered tree: height {}, {} leaves, invariants {}",
        recovered.height(),
        leaves.len(),
        if recovered.check_invariants().is_ok() {
            "OK"
        } else {
            "BROKEN"
        }
    );
    Ok(())
}
