//! Parameter tuning advisor (paper, Section 3.2).
//!
//! ```sh
//! cargo run --example tuning_advisor -- [n] [bit-budget] [queries-per-update]
//! cargo run --example tuning_advisor -- 1000000 64 100
//! ```

use ltree::cost_model;
use ltree::tuning::{self, Workload};
use ltree::{Instrumented, LTree, OrderedLabelingMut, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let n: u64 = args
        .next()
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(1_000_000);
    let budget: u32 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(64);
    let qpu: f64 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(10.0);

    println!("Tuning an L-Tree for a document of n = {n} tags\n");

    // Mode 1: minimize the update cost.
    let best = tuning::optimize_cost(n);
    println!("1) Minimal update cost (unconstrained):");
    println!("   (f, s) = ({}, {})", best.params.f(), best.params.s());
    println!(
        "   predicted cost : {:.1} node accesses/insert",
        best.predicted_cost
    );
    println!("   predicted bits : {:.1}", best.predicted_bits);

    // Mode 2: bit budget.
    println!("\n2) Minimal update cost within a {budget}-bit label budget:");
    match tuning::optimize_cost_with_bits(n, budget) {
        Ok(t) => {
            println!("   (f, s) = ({}, {})", t.params.f(), t.params.s());
            println!("   predicted cost : {:.1}", t.predicted_cost);
            println!("   predicted bits : {:.1} (≤ {budget})", t.predicted_bits);
            let penalty = t.predicted_cost / best.predicted_cost;
            println!("   cost penalty vs unconstrained: {penalty:.2}x");
        }
        Err(e) => println!("   {e}"),
    }

    // Mode 3: workload-weighted.
    println!("\n3) Overall optimum at {qpu} label comparisons per update (64-bit words):");
    let t = tuning::optimize_workload(&Workload {
        n,
        queries_per_update: qpu,
        word_bits: 64,
    });
    println!("   (f, s) = ({}, {})", t.params.f(), t.params.s());
    println!("   predicted bits : {:.1}", t.predicted_bits);
    println!(
        "   overall cost   : {:.1}",
        cost_model::overall_cost(
            f64::from(t.params.f()),
            f64::from(t.params.s()),
            n as f64,
            qpu,
            64
        )
    );

    // Validate the recommendation empirically on a scaled-down document.
    let sample_n = (n as usize).min(50_000);
    let ops = sample_n / 5;
    println!("\nEmpirical check on a {sample_n}-tag sample ({ops} uniform inserts):");
    for (tag, params) in [
        ("recommended", best.params),
        ("paper example", Params::new(4, 2)?),
    ] {
        let mut tree = LTree::new(params);
        let handles = tree.bulk_build(sample_n)?;
        tree.reset_scheme_stats();
        // Simple deterministic uniform-ish stream.
        let mut order = handles;
        let mut x = 0x2545f4914f6cdd1du64;
        for _ in 0..ops {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let i = (x % order.len() as u64) as usize;
            let h = OrderedLabelingMut::insert_after(&mut tree, order[i])?;
            order.insert(i + 1, h);
        }
        let st = tree.scheme_stats();
        println!(
            "   {tag:13} {:10} -> {:.1} writes/op, {:.1} cost/op, {} bits",
            params.to_string(),
            st.amortized_label_writes(),
            st.amortized_cost(),
            tree.label_space_bits()
        );
    }
    Ok(())
}
