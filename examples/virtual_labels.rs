//! The virtual L-Tree (paper, Section 4.2): same labels, no tree.
//!
//! ```sh
//! cargo run --release --example virtual_labels
//! ```

use ltree::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(4, 2)?;
    let n = 20_000usize;
    let ops = 10_000usize;

    // Drive both variants through the identical operation stream.
    let (mut mat, mat_leaves) = LTree::bulk_load(params, n)?;
    let mut mat_order: Vec<LeafId> = mat_leaves;
    let mut vt = VirtualLTree::new(params);
    let mut vt_order = vt.bulk_build(n)?;
    mat.reset_stats();
    vt.reset_scheme_stats();

    struct XorShift(u64);
    impl XorShift {
        fn pick(&mut self, len: usize) -> usize {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 % len as u64) as usize
        }
    }

    let mut rng = XorShift(0x9e3779b97f4a7c15);
    let t0 = Instant::now();
    for _ in 0..ops {
        let i = rng.pick(mat_order.len());
        let l = mat.insert_after(mat_order[i])?;
        mat_order.insert(i + 1, l);
    }
    let mat_time = t0.elapsed();

    let mut rng = XorShift(0x9e3779b97f4a7c15); // same stream
    let t1 = Instant::now();
    for _ in 0..ops {
        let i = rng.pick(vt_order.len());
        let h = vt.insert_after(vt_order[i])?;
        vt_order.insert(i + 1, h);
    }
    let vt_time = t1.elapsed();

    // The labels are bit-for-bit identical — the whole point of §4.2:
    // "all the structural information of the L-Tree is implicit in the
    // labels themselves".
    let mat_labels: Vec<u128> = mat.leaves().map(|l| mat.label(l).unwrap().get()).collect();
    assert_eq!(mat_labels, vt.labels_in_order());
    println!(
        "{} leaves, labels identical between the two variants ✓\n",
        mat_labels.len()
    );

    println!("                         materialized      virtual");
    println!(
        "time for {ops} inserts   {:>10.1?}   {:>10.1?}",
        mat_time, vt_time
    );
    println!(
        "memory                 {:>10} KiB {:>10} KiB",
        mat.memory_bytes() / 1024,
        OrderedLabeling::memory_bytes(&vt) / 1024
    );
    let ms = Instrumented::scheme_stats(&mat);
    let vs = vt.scheme_stats();
    println!(
        "label writes / op      {:>14.2} {:>12.2}",
        ms.amortized_label_writes(),
        vs.amortized_label_writes()
    );
    println!(
        "structure touches / op {:>14.2} {:>12.2}",
        ms.node_touches as f64 / ops as f64,
        vs.node_touches as f64 / ops as f64
    );
    println!("\nThe trade-off of §4.2 in one table: the virtual variant stores only the");
    println!("sorted labels (counted B-tree) — less memory — but pays range-count probes");
    println!("on every insert — more computation.");

    // Decode a label's ancestry straight from its digits (the observation
    // that makes the virtual variant possible).
    let leaf = mat_order[mat_order.len() / 2];
    let label = mat.label(leaf)?;
    println!(
        "\nBase-{} digits of label {} (child indices along the root path, low → high):",
        params.base(),
        label
    );
    println!("  {:?}", label.digits(&params, mat.height()));
    for h in 1..=mat.height() {
        let anc = label.ancestor(&params, h);
        println!("  virtual ancestor at height {h}: interval base {anc}");
    }
    Ok(())
}
