//! Error-path coverage for the registry's spec-string parser and every
//! factory's arity checking, over the **full default registry** — the
//! unknown-name, unbalanced-parenthesis and wrong-arity cases the
//! grammar in `ltree_core::registry` promises to reject with typed
//! errors pointing back at the docs.

use ltree::prelude::*;
use ltree::LTreeError;

fn build(spec: &str) -> Result<Box<dyn DynScheme>, LTreeError> {
    default_registry().build(spec)
}

#[test]
fn unknown_scheme_names_are_typed_and_helpful() {
    for spec in ["nope", "nope(4)", "sharded(2,nope)", "served(nope)"] {
        let err = build(spec).err().unwrap_or_else(|| panic!("{spec} built"));
        assert!(
            matches!(err, LTreeError::UnknownScheme { .. }),
            "{spec}: {err}"
        );
        let msg = err.to_string();
        assert!(msg.contains("nope"), "{spec}: {msg}");
        assert!(msg.contains("spec grammar"), "{spec}: {msg}");
    }
}

#[test]
fn unbalanced_parentheses_are_rejected_everywhere() {
    for spec in [
        "ltree(4,2",
        "ltree(4,2))",
        "ltree)4,2(",
        "sharded(2,ltree(4,2)",
        "sharded(2,ltree(4,2)))",
        "served(ltree",
        "served(ltree))",
        "gap(",
        ")",
        "ltree,",
    ] {
        assert!(
            matches!(build(spec), Err(LTreeError::InvalidSpec { .. })),
            "{spec} must be an InvalidSpec error"
        );
    }
}

#[test]
fn empty_and_malformed_argument_lists_are_rejected() {
    for spec in ["", "   ", "(4,2)", "ltree(4,)", "ltree(,2)", "sharded(,)"] {
        assert!(
            matches!(build(spec), Err(LTreeError::InvalidSpec { .. })),
            "{spec:?} must be an InvalidSpec error"
        );
    }
}

#[test]
fn wrong_arity_is_rejected_per_factory() {
    // Every factory checks its own argument count/shape.
    for spec in [
        "ltree(4)",
        "ltree(4,2,1)",
        "virtual(4)",
        "virtual(4,2,1)",
        "naive(1)",
        "gap(1,2)",
        "list-label(16,0.75,3)",
        "sharded",            // composites need at least the inner
        "sharded(4)",         // no inner spec
        "sharded(ltree,2)",   // inner must come last
        "sharded(2,4,ltree)", // (n,split,merge,inner) or shorter
        "served",             // inner required
        "served(4)",          // inner must be a spec, not a number
        "remote",             // address required
        "remote(1,2)",        // the address is a spec-shaped argument
    ] {
        assert!(
            matches!(build(spec), Err(LTreeError::InvalidSpec { .. })),
            "{spec} must be an InvalidSpec error"
        );
    }
}

#[test]
fn numeric_argument_validation_is_typed() {
    // Fractional or out-of-range numbers where integers are required.
    for spec in ["ltree(4.5,2)", "sharded(2.5,ltree)", "gap(-1)"] {
        assert!(
            matches!(build(spec), Err(LTreeError::InvalidSpec { .. })),
            "{spec} must be an InvalidSpec error"
        );
    }
    // Structurally valid specs with semantically bad parameters surface
    // the parameter error, not a parse error (and never a panic).
    assert!(matches!(
        build("ltree(5,2)"),
        Err(LTreeError::InvalidParams { .. })
    ));
}

/// The `key=value` option syntax (`remote(addr,conns=4,coalesce)`):
/// unknown and malformed options are [`LTreeError::InvalidOption`]
/// errors that *name the offending key* and point at the spec-grammar
/// table in ARCHITECTURE.md — never a silent no-op, never a vague
/// whole-spec error.
#[test]
fn option_errors_name_the_key_and_point_at_the_grammar_table() {
    for (spec, key) in [
        // Unknown options (a stray word where options belong is one).
        ("served(ltree,gap)", "gap"),
        ("served(ltree,bogus=1)", "bogus"),
        ("served(ltree(4,2),conns=2,nope)", "nope"),
        // Malformed values.
        ("served(ltree,conns=many)", "conns"),
        ("served(ltree,conns=0)", "conns"),
        ("served(ltree,retries=-1)", "retries"),
        ("served(ltree,timeout-ms=soon)", "timeout-ms"),
        // A flag given a value, and a valued key used bare.
        ("served(ltree,coalesce=1)", "coalesce"),
        ("served(ltree,conns)", "conns"),
        // Duplicates.
        ("served(ltree,conns=2,conns=3)", "conns"),
        // Structurally broken options.
        ("served(ltree,=4)", "=4"),
        ("served(ltree,conns=)", "conns"),
    ] {
        let err = build(spec).err().unwrap_or_else(|| panic!("{spec} built"));
        match &err {
            LTreeError::InvalidOption { key: k, .. } => assert_eq!(k, key, "{spec}"),
            other => panic!("{spec}: expected InvalidOption, got {other}"),
        }
        let msg = err.to_string();
        assert!(msg.contains(key), "{spec}: {msg}");
        assert!(msg.contains("ARCHITECTURE.md"), "{spec}: {msg}");
    }
}

/// The `durable(...)` wrapper's options: a missing inner spec is an
/// [`LTreeError::InvalidSpec`]; bad `dir=`, `sync=` and
/// `checkpoint_every=` values are [`LTreeError::InvalidOption`] errors
/// naming the offending key.
#[test]
fn durable_option_errors_are_typed() {
    for spec in ["durable", "durable(4)"] {
        assert!(
            matches!(build(spec), Err(LTreeError::InvalidSpec { .. })),
            "{spec} must be an InvalidSpec error"
        );
    }
    for (spec, key) in [
        // `dir` and `sync` need values; `sync` only accepts two words.
        ("durable(ltree(4,2),dir)", "dir"),
        ("durable(ltree(4,2),dir=)", "dir"),
        ("durable(ltree(4,2),sync)", "sync"),
        ("durable(ltree(4,2),sync=sometimes)", "sync"),
        // `checkpoint_every` must be a positive integer.
        (
            "durable(ltree(4,2),checkpoint_every=soon)",
            "checkpoint_every",
        ),
        ("durable(ltree(4,2),checkpoint_every=0)", "checkpoint_every"),
        (
            "durable(ltree(4,2),checkpoint_every=-3)",
            "checkpoint_every",
        ),
        // Unknown keys and duplicates behave like everywhere else.
        ("durable(ltree(4,2),bogus=1)", "bogus"),
        ("durable(gap,sync=never,sync=always)", "sync"),
    ] {
        let err = build(spec).err().unwrap_or_else(|| panic!("{spec} built"));
        match &err {
            LTreeError::InvalidOption { key: k, .. } => assert_eq!(k, key, "{spec}"),
            other => panic!("{spec}: expected InvalidOption, got {other}"),
        }
        assert!(err.to_string().contains("ARCHITECTURE.md"), "{spec}");
    }
}

/// And the flip side for `durable`: every well-formed option combination
/// builds (dir-less stores live in a self-cleaning scratch directory).
#[test]
fn durable_option_syntax_builds_when_well_formed() {
    for spec in [
        "durable(ltree(4,2))",
        "durable(gap,sync=never)",
        "durable(ltree(4,2),sync=always,checkpoint_every=3)",
        "served(durable(ltree(4,2),checkpoint_every=2))",
        "checked(durable(gap,sync=never))",
    ] {
        let mut s = build(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert_eq!(s.bulk_build(6).unwrap().len(), 6, "{spec}");
        assert_eq!(s.cursor().count(), 6, "{spec}");
    }
    // An explicit dir= builds too, against a scratch path (fixed paths
    // in tests are lint errors).
    let dir = ltree::remote::scratch_dir("spec-errors");
    let spec = format!("durable(ltree(4,2),dir={})", dir.display());
    let mut s = build(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
    assert_eq!(s.bulk_build(4).unwrap().len(), 4, "{spec}");
    drop(s);
    std::fs::remove_dir_all(&dir).ok();
}

/// The flip side: well-formed options build, on `served` and through
/// arbitrary nesting.
#[test]
fn option_syntax_builds_when_well_formed() {
    for spec in [
        "served(ltree(4,2),conns=2)",
        "served(ltree(4,2),conns=2,retries=1,reconnect,timeout-ms=2000)",
        "served(gap,coalesce)",
        "served( ltree(4,2) , conns=2 , coalesce )",
        "sharded(2,served(ltree(4,2),conns=2))",
    ] {
        let mut s = build(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert_eq!(s.bulk_build(6).unwrap().len(), 6, "{spec}");
        assert_eq!(s.cursor().count(), 6, "{spec}");
    }
}

#[test]
fn whitespace_and_nesting_still_parse() {
    // The flip side: the parser is strict about structure, not spacing.
    for spec in [
        " ltree( 4 , 2 ) ",
        "sharded( 2 , ltree(4,2) )",
        "served( sharded(2, gap) )",
        "sharded(2,served(ltree(4,2)))",
    ] {
        let mut s = build(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert_eq!(s.bulk_build(6).unwrap().len(), 6, "{spec}");
    }
}
