//! End-to-end XML pipeline: generate → serialize → parse → label →
//! update → query, with the navigational and label-join evaluators
//! cross-checked after every phase, over several labeling schemes.

use ltree::gen::{auction_profile, book_catalog_profile, generate, uniform_profile};
use ltree::prelude::*;
use ltree::xml::XmlTree;
use ltree::LabelingScheme;

const QUERIES: &[&str] = &[
    "//item",
    "/site/regions//item",
    "//person/name",
    "/site//description",
    "//parlist//text",
    "//*",
    "/site/*/item",
];

fn check_queries<S: LabelingScheme>(doc: &Document<S>, queries: &[&str]) {
    for q in queries {
        let path = Path::parse(q).unwrap();
        let nav = path.eval_navigational(doc).unwrap();
        let lab = path.eval_labeled(doc).unwrap();
        assert_eq!(nav, lab, "evaluators disagree on {q}");
    }
}

#[test]
fn auction_pipeline_with_ltree() {
    for seed in [1u64, 2, 3] {
        let tree = generate(&auction_profile(800), seed);
        // Serialize/parse roundtrip first: the parser must accept its own
        // serializer's output.
        let text = ltree::xml::to_string(&tree).unwrap();
        let reparsed = ltree::xml::parse(&text).unwrap();
        assert_eq!(reparsed.element_count(), 800);

        let mut doc =
            Document::from_tree(reparsed, LTree::new(Params::new(4, 2).unwrap())).unwrap();
        doc.validate().unwrap();
        check_queries(&doc, QUERIES);

        // Update storm: subtree insertions at varied spots + deletions.
        let root = doc.tree().root().unwrap();
        let (mut frag, fr) = XmlTree::with_root("open_auction");
        let b = frag.add_child(fr, "bidder").unwrap();
        frag.add_child(b, "increase").unwrap();
        for i in 0..30 {
            doc.insert_fragment(root, i % 4, &frag).unwrap();
        }
        // Delete ~10% of the leaf-most items.
        let victims: Vec<_> = doc
            .tree()
            .all_elements()
            .into_iter()
            .filter(|&id| {
                doc.tree()
                    .child_elements(id)
                    .map(|c| c.is_empty())
                    .unwrap_or(false)
                    && doc.tree().parent(id).ok().flatten().is_some()
            })
            .step_by(10)
            .collect();
        for v in victims {
            doc.delete_subtree(v).unwrap();
        }
        doc.validate().unwrap();
        check_queries(&doc, QUERIES);
    }
}

#[test]
fn books_pipeline_with_virtual_ltree() {
    let tree = generate(&book_catalog_profile(500), 7);
    let mut doc = Document::from_tree(tree, VirtualLTree::new(Params::new(8, 2).unwrap())).unwrap();
    doc.validate().unwrap();
    let queries = [
        "/catalog/book",
        "//title",
        "/catalog//section//para",
        "//chapter/title",
        "//book/*",
    ];
    check_queries(&doc, &queries);

    // A chapter-insertion hotspot at the front of the first book.
    let book = doc
        .tree()
        .child_elements(doc.tree().root().unwrap())
        .unwrap()[0];
    let (mut frag, fr) = XmlTree::with_root("chapter");
    let sect = frag.add_child(fr, "section").unwrap();
    frag.add_child(sect, "para").unwrap();
    frag.add_child(fr, "title").unwrap();
    for _ in 0..40 {
        doc.insert_fragment(book, 0, &frag).unwrap();
    }
    doc.validate().unwrap();
    check_queries(&doc, &queries);
    assert_eq!(doc.element_count(), 500 + 40 * 4);
}

#[test]
fn uniform_pipeline_with_baseline_scheme() {
    // The document layer is scheme-agnostic; even the naive baseline must
    // produce correct (if slow) query answers.
    let tree = generate(&uniform_profile(300), 21);
    let mut doc = Document::from_tree(tree, NaiveLabeling::new()).unwrap();
    doc.validate().unwrap();
    let queries = ["//a", "/root//p", "//b/y", "//*"];
    check_queries(&doc, &queries);
    let root = doc.tree().root().unwrap();
    for i in 0..20 {
        doc.insert_element(root, i, "a").unwrap();
    }
    doc.validate().unwrap();
    check_queries(&doc, &queries);
}

#[test]
fn document_order_comparisons_match_dfs() {
    let tree = generate(&auction_profile(400), 5);
    let doc = Document::from_tree(tree, LTree::new(Params::new(4, 2).unwrap())).unwrap();
    let order = doc.tree().all_elements();
    for pair in order.windows(2) {
        assert_eq!(
            doc.document_cmp(pair[0], pair[1]).unwrap(),
            std::cmp::Ordering::Less
        );
    }
    // is_ancestor agrees with the DOM parent chain on a sample.
    for &id in order.iter().step_by(7) {
        let mut cur = doc.tree().parent(id).unwrap();
        while let Some(p) = cur {
            assert!(doc.is_ancestor(p, id).unwrap());
            assert!(!doc.is_ancestor(id, p).unwrap());
            cur = doc.tree().parent(p).unwrap();
        }
    }
}

#[test]
fn deep_document_stays_consistent() {
    // A pathological right-spine document.
    let (mut tree, mut cur) = XmlTree::with_root("d0");
    for i in 1..200 {
        cur = tree.add_child(cur, &format!("d{i}")).unwrap();
    }
    let mut doc = Document::from_tree(tree, LTree::new(Params::new(4, 2).unwrap())).unwrap();
    doc.validate().unwrap();
    // Insert at the very bottom repeatedly (max-depth hotspot).
    let bottom = *doc.tree().all_elements().last().unwrap();
    for _ in 0..60 {
        doc.insert_element(bottom, 0, "leaf").unwrap();
    }
    doc.validate().unwrap();
    let path = Path::parse("//leaf").unwrap();
    assert_eq!(path.eval_navigational(&doc).unwrap().len(), 60);
    assert_eq!(path.eval_labeled(&doc).unwrap().len(), 60);
}
