//! End-to-end XML pipeline: generate → serialize → parse → label →
//! update → query, with the navigational and label-join evaluators
//! cross-checked after every phase, over several labeling schemes.

use ltree::gen::{auction_profile, book_catalog_profile, generate, uniform_profile};
use ltree::prelude::*;
use ltree::xml::XmlTree;
use ltree::LabelingScheme;

const QUERIES: &[&str] = &[
    "//item",
    "/site/regions//item",
    "//person/name",
    "/site//description",
    "//parlist//text",
    "//*",
    "/site/*/item",
];

fn check_queries<S: LabelingScheme>(doc: &Document<S>, queries: &[&str]) {
    for q in queries {
        let path = Path::parse(q).unwrap();
        let nav = path.eval_navigational(doc).unwrap();
        let lab = path.eval_labeled(doc).unwrap();
        assert_eq!(nav, lab, "evaluators disagree on {q}");
    }
}

#[test]
fn auction_pipeline_with_ltree() {
    for seed in [1u64, 2, 3] {
        let tree = generate(&auction_profile(800), seed);
        // Serialize/parse roundtrip first: the parser must accept its own
        // serializer's output.
        let text = ltree::xml::to_string(&tree).unwrap();
        let reparsed = ltree::xml::parse(&text).unwrap();
        assert_eq!(reparsed.element_count(), 800);

        let mut doc =
            Document::from_tree(reparsed, LTree::new(Params::new(4, 2).unwrap())).unwrap();
        doc.validate().unwrap();
        check_queries(&doc, QUERIES);

        // Update storm: subtree insertions at varied spots + deletions.
        let root = doc.tree().root().unwrap();
        let (mut frag, fr) = XmlTree::with_root("open_auction");
        let b = frag.add_child(fr, "bidder").unwrap();
        frag.add_child(b, "increase").unwrap();
        for i in 0..30 {
            doc.insert_fragment(root, i % 4, &frag).unwrap();
        }
        // Delete ~10% of the leaf-most items.
        let victims: Vec<_> = doc
            .tree()
            .all_elements()
            .into_iter()
            .filter(|&id| {
                doc.tree()
                    .child_elements(id)
                    .map(|c| c.is_empty())
                    .unwrap_or(false)
                    && doc.tree().parent(id).ok().flatten().is_some()
            })
            .step_by(10)
            .collect();
        for v in victims {
            doc.delete_subtree(v).unwrap();
        }
        doc.validate().unwrap();
        check_queries(&doc, QUERIES);
    }
}

#[test]
fn books_pipeline_with_virtual_ltree() {
    let tree = generate(&book_catalog_profile(500), 7);
    let mut doc = Document::from_tree(tree, VirtualLTree::new(Params::new(8, 2).unwrap())).unwrap();
    doc.validate().unwrap();
    let queries = [
        "/catalog/book",
        "//title",
        "/catalog//section//para",
        "//chapter/title",
        "//book/*",
    ];
    check_queries(&doc, &queries);

    // A chapter-insertion hotspot at the front of the first book.
    let book = doc
        .tree()
        .child_elements(doc.tree().root().unwrap())
        .unwrap()[0];
    let (mut frag, fr) = XmlTree::with_root("chapter");
    let sect = frag.add_child(fr, "section").unwrap();
    frag.add_child(sect, "para").unwrap();
    frag.add_child(fr, "title").unwrap();
    for _ in 0..40 {
        doc.insert_fragment(book, 0, &frag).unwrap();
    }
    doc.validate().unwrap();
    check_queries(&doc, &queries);
    assert_eq!(doc.element_count(), 500 + 40 * 4);
}

#[test]
fn uniform_pipeline_with_baseline_scheme() {
    // The document layer is scheme-agnostic; even the naive baseline must
    // produce correct (if slow) query answers.
    let tree = generate(&uniform_profile(300), 21);
    let mut doc = Document::from_tree(tree, NaiveLabeling::new()).unwrap();
    doc.validate().unwrap();
    let queries = ["//a", "/root//p", "//b/y", "//*"];
    check_queries(&doc, &queries);
    let root = doc.tree().root().unwrap();
    for i in 0..20 {
        doc.insert_element(root, i, "a").unwrap();
    }
    doc.validate().unwrap();
    check_queries(&doc, &queries);
}

#[test]
fn bulk_load_issues_10x_fewer_mut_calls_than_per_node() {
    use ltree::probe::CallCounter;
    // The acceptance bar for splice-driven bulk loading: on a 10k-node
    // document, the bulk path must issue at least 10× fewer
    // OrderedLabelingMut/BatchLabeling calls than labeling one tag at a
    // time — while doing the same logical work.
    let tree = generate(&auction_profile(10_000), 42);
    let params = Params::new(4, 2).unwrap();
    let bulk = Document::from_tree(tree.clone(), CallCounter::new(LTree::new(params))).unwrap();
    let incr = Document::from_tree_incremental(tree, CallCounter::new(LTree::new(params))).unwrap();
    bulk.validate().unwrap();
    incr.validate().unwrap();

    let (b, i) = (bulk.scheme().counts(), incr.scheme().counts());
    assert_eq!(
        i.mutation_calls(),
        20_000,
        "per-node path pays one call per tag"
    );
    assert_eq!(b.mutation_calls(), 1, "bulk path is a single scheme call");
    assert!(
        10 * b.mutation_calls() <= i.mutation_calls(),
        "bulk path must issue >= 10x fewer mutation calls ({} vs {})",
        b.mutation_calls(),
        i.mutation_calls()
    );

    // And in SchemeStats currency: both paths track the same 20k leaves,
    // but bulk loading is not an update stream (the paper's model charges
    // it nothing — its counters stay zero), while the per-node path pays
    // full amortized relabeling for every single tag.
    assert_eq!(bulk.scheme().live_len(), incr.scheme().live_len());
    assert_eq!(bulk.scheme().live_len(), 20_000);
    let (bs, is) = (bulk.scheme().scheme_stats(), incr.scheme().scheme_stats());
    assert_eq!(is.inserts, 20_000, "per-node path pays per-item cost");
    assert!(
        is.label_writes >= 20_000,
        "every tag was labeled at least once"
    );
    assert!(
        bs.label_writes <= is.label_writes / 10,
        "bulk label maintenance must undercut per-node by 10x ({} vs {})",
        bs.label_writes,
        is.label_writes
    );
}

#[test]
fn fragment_batches_beat_per_element_insertion() {
    use ltree::probe::CallCounter;
    // The same bar for incremental growth: inserting a 50-element
    // fragment is one splice, not 100 single inserts.
    let params = Params::new(4, 2).unwrap();
    let mut doc = Document::parse_str("<r><a/></r>", CallCounter::new(LTree::new(params))).unwrap();
    let root = doc.tree().root().unwrap();
    let (mut frag, fr) = XmlTree::with_root("chunk");
    for i in 0..49 {
        frag.add_child(fr, if i % 2 == 0 { "x" } else { "y" })
            .unwrap();
    }
    let before = doc.scheme().counts().mutation_calls();
    for i in 0..10 {
        doc.insert_fragment(root, i, &frag).unwrap();
    }
    assert_eq!(
        doc.scheme().counts().mutation_calls() - before,
        10,
        "one splice per 50-element fragment"
    );
    doc.validate().unwrap();
    assert_eq!(doc.element_count(), 2 + 10 * 50);
}

#[test]
fn document_order_comparisons_match_dfs() {
    let tree = generate(&auction_profile(400), 5);
    let doc = Document::from_tree(tree, LTree::new(Params::new(4, 2).unwrap())).unwrap();
    let order = doc.tree().all_elements();
    for pair in order.windows(2) {
        assert_eq!(
            doc.document_cmp(pair[0], pair[1]).unwrap(),
            std::cmp::Ordering::Less
        );
    }
    // is_ancestor agrees with the DOM parent chain on a sample.
    for &id in order.iter().step_by(7) {
        let mut cur = doc.tree().parent(id).unwrap();
        while let Some(p) = cur {
            assert!(doc.is_ancestor(p, id).unwrap());
            assert!(!doc.is_ancestor(id, p).unwrap());
            cur = doc.tree().parent(p).unwrap();
        }
    }
}

#[test]
fn deep_document_stays_consistent() {
    // A pathological right-spine document.
    let (mut tree, mut cur) = XmlTree::with_root("d0");
    for i in 1..200 {
        cur = tree.add_child(cur, &format!("d{i}")).unwrap();
    }
    let mut doc = Document::from_tree(tree, LTree::new(Params::new(4, 2).unwrap())).unwrap();
    doc.validate().unwrap();
    // Insert at the very bottom repeatedly (max-depth hotspot).
    let bottom = *doc.tree().all_elements().last().unwrap();
    for _ in 0..60 {
        doc.insert_element(bottom, 0, "leaf").unwrap();
    }
    doc.validate().unwrap();
    let path = Path::parse("//leaf").unwrap();
    assert_eq!(path.eval_navigational(&doc).unwrap().len(), 60);
    assert_eq!(path.eval_labeled(&doc).unwrap().len(), 60);
}
