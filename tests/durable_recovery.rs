//! Crash-point fault injection for the durability layer.
//!
//! The contract under test: with `sync=always` (the default), every
//! operation the store *acknowledges* (returns `Ok`) survives a crash,
//! and nothing it did not acknowledge does. The [`SimDir`] storage
//! simulator makes that testable at every single disk operation: arm a
//! crash at mutating disk op `k`, drive a seeded workload until the
//! storage dies mid-op, restart the directory, recover, and require the
//! recovered live order to equal **exactly** the state after the last
//! acknowledged operation.
//!
//! The sweep visits every `k` in `0..total_disk_ops` for several seeds
//! (well over the 200 kill points the roadmap asks for), so the crash
//! lands inside every append, every fsync, and every checkpoint
//! replace/truncate the workload performs. A second sweep runs the same
//! assertion with `sync=never` — acknowledging *before* the log reaches
//! disk — and demonstrates that it fails, which is precisely why
//! fsync-before-ack is the default.

use ltree::prelude::*;
use ltree::remote::wal::{encode_record, WAL_FILE};
use ltree::remote::wire::Request;
use ltree::remote::{DurableDir, DurableScheme, FsDir, SimDir, SyncPolicy};
use ltree::rng::SplitMix64;
use ltree::LTreeError;

fn ltree_inner() -> Box<dyn DynScheme> {
    Box::new(LTree::new(Params::new(4, 2).unwrap()))
}

fn opts(sync: SyncPolicy) -> DurableOptions {
    DurableOptions {
        sync,
        // Small enough that the kill-point sweep crashes inside many
        // automatic checkpoints, not just inside appends and fsyncs.
        checkpoint_every: 7,
    }
}

/// Drive a seeded workload against a durable store over `dir`, keeping
/// a shadow copy of the live order that is updated only when the store
/// acknowledges the mutation. Returns the acknowledged state; stops at
/// the first error (the armed crash).
///
/// Everything is deterministic in `seed`: reruns over a different
/// `SimDir` acknowledge the same prefix up to wherever the crash hits.
fn drive(dir: &SimDir, seed: u64, sync: SyncPolicy) -> Vec<LeafHandle> {
    let mut shadow: Vec<LeafHandle> = Vec::new();
    let mut store = match DurableScheme::open(ltree_inner(), Box::new(dir.clone()), opts(sync)) {
        Ok(s) => s,
        Err(_) => return shadow,
    };
    match store.bulk_build(8) {
        Ok(hs) => shadow = hs,
        Err(_) => return shadow,
    }
    let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    for _ in 0..40 {
        // Draw the whole op before applying it, so the rng stream (and
        // with it the rest of the workload) does not depend on where a
        // crash cuts the run.
        let roll = rng.gen_range(0..100);
        let ok = if roll < 30 || shadow.is_empty() {
            let pos = if shadow.is_empty() {
                0
            } else {
                rng.gen_range(0..shadow.len())
            };
            let r = if shadow.is_empty() {
                store.insert_first()
            } else if roll.is_multiple_of(2) {
                store.insert_after(shadow[pos])
            } else {
                store.insert_before(shadow[pos])
            };
            match r {
                Ok(h) => {
                    let at = if shadow.is_empty() {
                        0
                    } else if roll.is_multiple_of(2) {
                        pos + 1
                    } else {
                        pos
                    };
                    shadow.insert(at, h);
                    true
                }
                Err(_) => false,
            }
        } else if roll < 50 {
            let pos = rng.gen_range(0..shadow.len());
            match store.delete(shadow[pos]) {
                Ok(()) => {
                    shadow.remove(pos);
                    true
                }
                Err(_) => false,
            }
        } else if roll < 75 {
            let pos = rng.gen_range(0..shadow.len());
            let k = rng.gen_range(1..5);
            match store.insert_many_after(shadow[pos], k) {
                Ok(hs) => {
                    for (i, h) in hs.into_iter().enumerate() {
                        shadow.insert(pos + 1 + i, h);
                    }
                    true
                }
                Err(_) => false,
            }
        } else if roll < 90 {
            let pos = rng.gen_range(0..shadow.len());
            let count = rng.gen_range(1..4);
            match store.delete_run(shadow[pos], count) {
                Ok(deleted) => {
                    shadow.drain(pos..pos + deleted);
                    true
                }
                Err(_) => false,
            }
        } else {
            // An explicit checkpoint: no logical change, but it puts
            // kill points inside snapshot replace + log truncate.
            store.checkpoint().is_ok()
        };
        if !ok {
            break;
        }
    }
    shadow
}

fn recover(dir: &SimDir) -> ltree::Result<DurableScheme> {
    DurableScheme::open(
        ltree_inner(),
        Box::new(dir.clone()),
        opts(SyncPolicy::Always),
    )
}

/// The tentpole sweep: for several seeds, crash at *every* mutating
/// disk op the workload performs and require exact acked-prefix
/// recovery each time.
#[test]
fn recovery_is_exact_at_every_kill_point() {
    let mut kill_points = 0usize;
    for seed in 0..3u64 {
        // Dry run (no crash armed) to learn the disk-op count.
        let dry = SimDir::new(seed);
        let full = drive(&dry, seed, SyncPolicy::Always);
        let total = dry.ops_done();
        assert!(
            total >= 70,
            "seed {seed}: workload only performed {total} disk ops"
        );
        // A clean shutdown recovers the full state.
        let rec = recover(&dry).unwrap();
        assert_eq!(
            rec.cursor().collect::<Vec<_>>(),
            full,
            "seed {seed}: clean reopen"
        );
        drop(rec);

        for k in 0..total {
            // Different dir seed per kill point: the torn-prefix length
            // the simulator keeps varies across the sweep.
            let dir = SimDir::new(seed.wrapping_mul(0x1_0000) ^ k);
            dir.crash_after(k);
            let acked = drive(&dir, seed, SyncPolicy::Always);
            assert!(dir.crashed(), "seed {seed} kill {k}: crash never fired");
            dir.restart();
            let rec = recover(&dir)
                .unwrap_or_else(|e| panic!("seed {seed} kill {k}: recovery failed: {e}"));
            let got: Vec<LeafHandle> = rec.cursor().collect();
            assert_eq!(
                got, acked,
                "seed {seed} kill {k}: recovered order != acknowledged prefix"
            );
            assert_eq!(rec.live_len(), acked.len(), "seed {seed} kill {k}");
            // Labels must still be strictly ordered after recovery.
            let mut prev = None;
            for h in &got {
                let l = rec.label_of(*h).unwrap();
                assert!(prev.is_none_or(|p| p < l), "seed {seed} kill {k}");
                prev = Some(l);
            }
            kill_points += 1;
        }
    }
    assert!(
        kill_points >= 200,
        "only {kill_points} kill points exercised; the sweep must cover at least 200"
    );
}

/// A recovered store is a working store: it keeps acknowledging and
/// persisting writes, and a second crash recovers the extended prefix.
#[test]
fn recovery_composes_with_further_crashes() {
    let dir = SimDir::new(99);
    let mut acked = drive(&dir, 99, SyncPolicy::Always);
    let mut store = recover(&dir).unwrap();
    assert_eq!(store.cursor().collect::<Vec<_>>(), acked);
    // Crash partway through a second burst of writes on the recovered
    // store (each insert costs an append + an fsync).
    dir.crash_after(9);
    for _ in 0..10 {
        match store.insert_first() {
            Ok(h) => acked.insert(0, h),
            Err(_) => break,
        }
    }
    assert!(dir.crashed(), "second crash never fired");
    dir.restart();
    let rec = recover(&dir).unwrap();
    assert_eq!(
        rec.cursor().collect::<Vec<_>>(),
        acked,
        "second recovery must return the extended acknowledged prefix"
    );
}

/// The negative control the roadmap demands: `sync=never` acknowledges
/// before fsync, and the very same sweep shows acknowledged writes
/// vanishing in a crash. If this test ever starts failing, the
/// simulator has stopped modelling the loss that makes `sync=always`
/// worth its latency.
#[test]
fn ack_before_fsync_demonstrably_loses_acknowledged_writes() {
    let seed = 7u64;
    let dry = SimDir::new(seed);
    drive(&dry, seed, SyncPolicy::Never);
    let total = dry.ops_done();
    assert!(total >= 20, "sync=never workload did {total} disk ops");
    let mut lost = 0usize;
    for k in 0..total {
        let dir = SimDir::new(seed.wrapping_mul(77) ^ k);
        dir.crash_after(k);
        let acked = drive(&dir, seed, SyncPolicy::Never);
        if !dir.crashed() {
            continue;
        }
        dir.restart();
        match recover(&dir) {
            Ok(rec) => {
                if rec.cursor().collect::<Vec<_>>() != acked {
                    lost += 1;
                }
            }
            Err(_) => lost += 1,
        }
    }
    assert!(
        lost > 0,
        "sync=never must lose acknowledged writes somewhere in a {total}-op sweep"
    );
}

/// A torn final record — the crash hit mid-append and a prefix of the
/// record still reached the platter — is not corruption: recovery keeps
/// the acknowledged prefix, truncates the tail, and the log stays
/// appendable across another reopen.
#[test]
fn a_torn_final_record_is_truncated_and_the_prefix_kept() {
    let mut dir = SimDir::new(11);
    let mut store = DurableScheme::open(
        ltree_inner(),
        Box::new(dir.clone()),
        opts(SyncPolicy::Always),
    )
    .unwrap();
    let hs = store.bulk_build(5).unwrap();
    store.insert_after(hs[2]).unwrap();
    let expect: Vec<LeafHandle> = store.cursor().collect();
    drop(store);
    // Fake the crash: fsync a strict prefix of a valid next record.
    let rec = encode_record(1000, &Request::InsertFirst);
    for cut in [1, rec.len() / 2, rec.len() - 1] {
        dir.append(WAL_FILE, &rec[..cut]).unwrap();
        dir.sync(WAL_FILE).unwrap();
        let store = recover(&dir).unwrap();
        assert_eq!(store.cursor().collect::<Vec<_>>(), expect, "cut {cut}");
        drop(store);
    }
    // The tail was truncated, so the log is appendable again.
    let mut store = recover(&dir).unwrap();
    let h = store.insert_first().unwrap();
    let mut expect2 = expect;
    expect2.insert(0, h);
    drop(store);
    let store = recover(&dir).unwrap();
    assert_eq!(store.cursor().collect::<Vec<_>>(), expect2);
}

/// A complete record with a bad checksum is genuine corruption and must
/// surface as a typed [`LTreeError::Durability`], never a panic and
/// never a silent truncation.
#[test]
fn corruption_inside_the_log_is_a_typed_error() {
    let dir = SimDir::new(13);
    let mut store = DurableScheme::open(
        ltree_inner(),
        Box::new(dir.clone()),
        opts(SyncPolicy::Always),
    )
    .unwrap();
    store.bulk_build(4).unwrap();
    store.insert_first().unwrap();
    drop(store);
    let mut image = dir.read(WAL_FILE).unwrap().unwrap();
    // Flip a byte inside the *first* record's body: a complete record
    // fails its checksum, which is not a torn tail.
    image[6] ^= 0x40;
    let mut d = dir.clone();
    d.truncate(WAL_FILE, 0).unwrap();
    d.append(WAL_FILE, &image).unwrap();
    d.sync(WAL_FILE).unwrap();
    match recover(&dir) {
        Err(LTreeError::Durability { context }) => {
            assert!(
                context.contains("checksum") || context.contains("decode"),
                "{context}"
            );
        }
        Err(other) => panic!("expected a Durability error, got {other:?}"),
        Ok(_) => panic!("corrupted log recovered silently"),
    }
}

/// The same recovery path over the real filesystem: a `durable(...)`
/// store reopened from an on-disk directory (a fresh scratch dir, per
/// the repo's no-fixed-paths rule) carries its state across instances.
#[test]
fn fs_backed_stores_recover_across_reopens() {
    let root = ltree::remote::scratch_dir("durable-recovery");
    let mut store = DurableScheme::open(
        ltree_inner(),
        Box::new(FsDir::open(&root).unwrap()),
        opts(SyncPolicy::Always),
    )
    .unwrap();
    let hs = store.bulk_build(6).unwrap();
    store.insert_many_after(hs[1], 3).unwrap();
    store.delete(hs[4]).unwrap();
    store.checkpoint().unwrap();
    store.insert_first().unwrap();
    let expect: Vec<LeafHandle> = store.cursor().collect();
    drop(store);
    let store = DurableScheme::open(
        ltree_inner(),
        Box::new(FsDir::open(&root).unwrap()),
        opts(SyncPolicy::Always),
    )
    .unwrap();
    assert_eq!(store.cursor().collect::<Vec<_>>(), expect);
    assert!(
        store.replayed_records() >= 1,
        "insert after checkpoint replays"
    );
    drop(store);
    std::fs::remove_dir_all(&root).ok();
}
