//! Experiment X9 (correctness half) — the virtual L-Tree (paper §4.2)
//! produces *identical labels* to the materialized L-Tree under any
//! operation stream: the structure really is "implicit in the labels
//! themselves". Randomized across parameter presets via the seeded
//! workspace PRNG; failures reproduce from the printed seed.

use ltree::prelude::*;
use ltree::rng::SplitMix64;

/// An abstract op over item indices (interpreted against the live list).
#[derive(Debug, Clone)]
enum Op {
    InsertAfter(usize),
    InsertBefore(usize),
    InsertMany(usize, usize),
    Delete(usize),
}

fn random_ops(rng: &mut SplitMix64, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let i = rng.gen_range(0..10_000);
            match rng.gen_range(0..8) {
                0..=3 => Op::InsertAfter(i),
                4..=5 => Op::InsertBefore(i),
                6 => Op::InsertMany(i, rng.gen_range(1..40)),
                _ => Op::Delete(i),
            }
        })
        .collect()
}

fn materialized_labels(t: &LTree) -> Vec<u128> {
    t.leaves().map(|l| t.label(l).unwrap().get()).collect()
}

fn run_stream(params: Params, initial: usize, ops: &[Op]) {
    let (mut mat, mat_handles) = LTree::bulk_load(params, initial).unwrap();
    let mut mat_order: Vec<LeafId> = mat_handles;
    let mut virt = VirtualLTree::new(params);
    let mut virt_order: Vec<LeafHandle> = virt.bulk_build(initial).unwrap();

    for op in ops {
        match *op {
            Op::InsertAfter(i) => {
                if mat_order.is_empty() {
                    continue;
                }
                let i = i % mat_order.len();
                let m = mat.insert_after(mat_order[i]).unwrap();
                let v = virt.insert_after(virt_order[i]).unwrap();
                mat_order.insert(i + 1, m);
                virt_order.insert(i + 1, v);
            }
            Op::InsertBefore(i) => {
                if mat_order.is_empty() {
                    continue;
                }
                let i = i % mat_order.len();
                let m = mat.insert_before(mat_order[i]).unwrap();
                let v = virt.insert_before(virt_order[i]).unwrap();
                mat_order.insert(i, m);
                virt_order.insert(i, v);
            }
            Op::InsertMany(i, k) => {
                if mat_order.is_empty() {
                    continue;
                }
                let i = i % mat_order.len();
                let ms = mat.insert_many_after(mat_order[i], k).unwrap();
                let vs = BatchLabeling::insert_many_after(&mut virt, virt_order[i], k).unwrap();
                for (j, (m, v)) in ms.into_iter().zip(vs).enumerate() {
                    mat_order.insert(i + 1 + j, m);
                    virt_order.insert(i + 1 + j, v);
                }
            }
            Op::Delete(i) => {
                if mat_order.is_empty() {
                    continue;
                }
                let i = i % mat_order.len();
                // Tombstone (idempotence errors are part of the contract:
                // both sides must agree).
                let m = mat.delete(mat_order[i]);
                let v = virt.delete(virt_order[i]);
                assert_eq!(m.is_ok(), v.is_ok());
            }
        }
        // Bit-for-bit label equivalence after *every* op.
        assert_eq!(materialized_labels(&mat), virt.labels_in_order());
        assert_eq!(mat.height(), virt.height(), "heights track together");
    }
    mat.check_invariants().unwrap();
    virt.check_invariants().unwrap();
    // Handle-level agreement too.
    for (m, v) in mat_order.iter().zip(&virt_order) {
        assert_eq!(mat.label(*m).unwrap().get(), virt.label_of(*v).unwrap());
    }
}

fn random_streams(params: Params, seed_base: u64) {
    for seed in seed_base..seed_base + 24 {
        let mut rng = SplitMix64::new(seed);
        let initial = rng.gen_range(0..40);
        let stream_len = rng.gen_range(1..60);
        let ops = random_ops(&mut rng, stream_len);
        run_stream(params, initial, &ops);
    }
}

#[test]
fn virtual_equals_materialized_f4s2() {
    random_streams(Params::new(4, 2).unwrap(), 0);
}

#[test]
fn virtual_equals_materialized_f9s3() {
    random_streams(Params::new(9, 3).unwrap(), 1_000);
}

#[test]
fn virtual_equals_materialized_f16s4() {
    random_streams(Params::new(16, 4).unwrap(), 2_000);
}

#[test]
fn long_hotspot_stream_equivalence() {
    let params = Params::new(4, 2).unwrap();
    let ops: Vec<Op> = (0..600).map(|i| Op::InsertAfter(i / 3)).collect();
    run_stream(params, 8, &ops);
}

#[test]
fn batch_heavy_stream_equivalence() {
    let params = Params::new(8, 2).unwrap();
    let ops: Vec<Op> = (0..40)
        .map(|i| Op::InsertMany(i * 7, (i % 13) + 1))
        .collect();
    run_stream(params, 4, &ops);
}
