//! End-to-end observability acceptance: a live port-0 [`LabelServer`]
//! hosting `traced(durable(ltree(4,2)))` answers the wire `Metrics`
//! request with a snapshot that agrees **counter-for-counter** with the
//! in-process registry — including nonzero fsync-duration and per-op
//! latency histograms — and the snapshot renders as Prometheus text.
//!
//! The scrape travels over a real TCP connection (client →
//! `Request::Metrics` frame → server → `Response::Metrics` frame), so
//! the whole codec path for histogram frames is exercised too.

use ltree::prelude::*;
use ltree_core::metrics::{Metric, MetricValue};

fn hist_count(ms: &[Metric], name: &str) -> u64 {
    match &ms
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("missing metric {name}"))
        .value
    {
        MetricValue::Histogram(h) => h.count,
        other => panic!("{name} should be a histogram, got {other:?}"),
    }
}

fn counter(ms: &[Metric], name: &str) -> u64 {
    match &ms
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("missing metric {name}"))
        .value
    {
        MetricValue::Counter(v) => *v,
        other => panic!("{name} should be a counter, got {other:?}"),
    }
}

#[test]
fn tcp_metrics_scrape_agrees_with_the_in_process_registry() {
    let scheme = default_registry()
        .build("traced(durable(ltree(4,2)))")
        .unwrap();
    let server = LabelServer::bind("127.0.0.1:0", scheme).unwrap();
    let mut client = RemoteScheme::connect(&server.local_addr().to_string()).unwrap();

    // A workload touching every phase: bulk load, point ops, a batch
    // splice, a delete run, and reads.
    let hs = client.bulk_build(64).unwrap();
    let mid = client.insert_after(hs[10]).unwrap();
    client.insert_before(hs[20]).unwrap();
    client.delete(mid).unwrap();
    let batch = client.insert_many_after(hs[30], 25).unwrap();
    client.delete_run(batch[0], 10).unwrap();
    client.label_of(hs[0]).unwrap();

    // Scrape over TCP *first*: the scrape's own apply/encode samples are
    // recorded after its response frame is built, so the in-process
    // snapshot taken afterwards can only run ahead on `net/` series —
    // never the other way around.
    let scraped = client.metrics();
    let local = server.metrics();

    // Scheme-owned series (`obs/…`, `wal/…`) agree counter-for-counter:
    // nothing touched the scheme between the two snapshots.
    let scheme_owned = |ms: &[Metric]| -> Vec<Metric> {
        ms.iter()
            .filter(|m| m.name.starts_with("obs/") || m.name.starts_with("wal/"))
            .cloned()
            .collect()
    };
    assert_eq!(
        scheme_owned(&scraped),
        scheme_owned(&local),
        "wire scrape must mirror the in-process registry exactly"
    );

    // The histograms the acceptance criteria name, all nonzero.
    assert!(hist_count(&scraped, "wal/fsync-duration") > 0, "fsyncs ran");
    assert_eq!(hist_count(&scraped, "obs/op/bulk_build"), 1);
    assert_eq!(hist_count(&scraped, "obs/op/insert_after"), 1);
    assert_eq!(hist_count(&scraped, "obs/op/insert_before"), 1);
    assert_eq!(hist_count(&scraped, "obs/op/delete"), 1);
    // Batch edits travel as typed `Splice` frames and land on the
    // scheme's `splice` entry point, so they record under `obs/op/splice`.
    assert_eq!(hist_count(&scraped, "obs/op/splice"), 2);
    assert!(hist_count(&scraped, "obs/op/label_of") >= 1);

    // Server-side series ride along: request counting and per-request
    // phase histograms are present and nonzero in the scrape.
    assert!(counter(&scraped, "net/requests") >= 8);
    for phase in ["decode", "lock-wait", "apply", "encode"] {
        assert!(
            hist_count(&scraped, &format!("net/phase/{phase}")) > 0,
            "net/phase/{phase} must have samples"
        );
    }

    // The scrape is name-sorted (the wire contract for stable output).
    let names: Vec<&str> = scraped.iter().map(|m| m.name.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);

    // And it renders as Prometheus exposition text.
    let text = render_prometheus(&scraped);
    assert!(text.contains("ltree_net_requests_total"));
    assert!(text.contains("ltree_wal_fsync_duration"));
    assert!(text.contains("quantile=\"0.99\""));
}

/// The breakdown-ordering contract (deterministic, name-sorted) holds
/// at every collection point in the stack.
#[test]
fn stats_breakdowns_are_name_sorted_everywhere() {
    for spec in [
        "checked(ltree(4,2))",
        "sharded(4,ltree(4,2))",
        "durable(ltree(4,2))",
        "served(traced(ltree(4,2)))",
        "traced(durable(gap))",
    ] {
        let mut s = default_registry().build(spec).unwrap();
        let hs = s.bulk_build(40).unwrap();
        s.insert_after(hs[3]).unwrap();
        s.delete(hs[7]).unwrap();
        let names: Vec<String> = s.stats_breakdown().into_iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "{spec}: breakdown must be name-sorted");
    }
}

/// `sharded(…,traced(…))` reports one merged `obs/op/*` family spanning
/// all segments instead of per-segment duplicates.
#[test]
fn sharded_merges_traced_metrics_across_segments() {
    let mut s = default_registry()
        .build("sharded(4,traced(ltree(4,2)))")
        .unwrap();
    let hs = s.bulk_build(40).unwrap();
    s.insert_after(hs[5]).unwrap();
    s.insert_after(hs[35]).unwrap();
    let ms = s.metrics();
    let bulk: Vec<&Metric> = ms
        .iter()
        .filter(|m| m.name == "obs/op/bulk_build")
        .collect();
    assert_eq!(bulk.len(), 1, "one merged series, not one per segment");
    match &bulk[0].value {
        MetricValue::Histogram(h) => assert_eq!(h.count, 4, "all four segments' builds merged"),
        other => panic!("expected a histogram, got {other:?}"),
    }
}
