//! End-to-end coverage for the networked label store: a real
//! `Document` over a served scheme, and the batch-amortization claim —
//! bulk loads and splices cost a constant number of round trips, not
//! one per item. Everything runs against in-process loopback servers
//! (`served(...)` specs), so no external process is involved.

use ltree::gen::{book_catalog_profile, generate};
use ltree::prelude::*;

/// Client round trips so far, read through the `Instrumented` facet —
/// the `net/round-trips` breakdown entry (its value rides in
/// `node_touches`). The read itself costs one round trip, which is
/// *included* in the returned number.
fn round_trips(s: &dyn DynScheme) -> u64 {
    s.stats_breakdown()
        .iter()
        .find(|(name, _)| name == "net/round-trips")
        .map(|(_, st)| st.node_touches)
        .expect("remote schemes expose net/round-trips")
}

/// The acceptance pin: a 10k-node bulk load through `RemoteScheme` is a
/// small constant number of round trips. The per-op path pays one trip
/// per insert (~20k for the same load through 20k singles) — measured
/// at 1/10 scale below so the suite stays fast.
#[test]
fn bulk_load_is_constant_round_trips() {
    let mut scheme = Scheme::build("served(ltree(4,2))").unwrap();
    scheme.bulk_build(10_000).unwrap();
    let rt = round_trips(&*scheme);
    // Handshake + bulk build + the breakdown read itself.
    assert!(rt <= 8, "10k-item bulk load took {rt} round trips");

    // The per-op reference path at 1/10 scale: one trip per insert.
    let mut per_op = Scheme::build("served(ltree(4,2))").unwrap();
    let mut cur = per_op.insert_first().unwrap();
    for _ in 1..1_000 {
        cur = per_op.insert_after(cur).unwrap();
    }
    let per_op_rt = round_trips(&*per_op);
    assert!(
        per_op_rt >= 1_000,
        "singles pay one trip each ({per_op_rt})"
    );
    assert!(
        rt * 100 <= per_op_rt,
        "batching must amortize at least 100x at this scale ({rt} vs {per_op_rt})"
    );
}

/// Splices amortize the same way mid-session: a 5k-item subtree
/// insertion is one trip, a 2k-item removal is one trip.
#[test]
fn splices_are_one_round_trip_each() {
    let mut scheme = Scheme::build("served(ltree(4,2))").unwrap();
    let hs = scheme.bulk_build(100).unwrap();
    let before = round_trips(&*scheme);
    let batch = scheme
        .splice(Splice::InsertAfter {
            anchor: hs[50],
            count: 5_000,
        })
        .unwrap()
        .into_inserted();
    let deleted = scheme
        .splice(Splice::DeleteRun {
            first: batch[0],
            count: 2_000,
        })
        .unwrap()
        .deleted();
    assert_eq!(deleted, 2_000);
    let spent = round_trips(&*scheme) - before;
    // Two splices + two breakdown reads.
    assert!(spent <= 4, "two splices took {spent} trips");
    assert_eq!(scheme.live_len(), 3_100);
}

/// A real `Document` over a served scheme, end to end: bulk load,
/// fragment insertion, subtree removal, subtree move, label queries and
/// serialization all behave exactly as over the local scheme.
#[test]
fn document_over_a_served_scheme_matches_local() {
    let tree = generate(&book_catalog_profile(400), 23);
    let text = ltree::xml::to_string(&tree).unwrap();

    let mut remote = Document::parse_str(&text, Scheme::build("served(ltree(4,2))").unwrap())
        .expect("parse over the wire");
    let mut local = Document::parse_str(&text, Scheme::build("ltree(4,2)").unwrap()).unwrap();
    remote.validate().unwrap();

    // Same document order and containment as the local twin.
    let order = |d: &Document<Box<dyn DynScheme>>| -> Vec<_> {
        d.all_spans().unwrap().into_iter().map(|s| s.node).collect()
    };
    assert_eq!(order(&remote), order(&local));
    let dfs = remote.tree().all_elements();
    for (i, &a) in dfs.iter().step_by(17).enumerate() {
        for &b in dfs.iter().skip(i).step_by(31) {
            assert_eq!(
                remote.is_ancestor(a, b).unwrap(),
                local.is_ancestor(a, b).unwrap(),
                "ancestor({a:?}, {b:?})"
            );
        }
    }

    // Edit through the splice paths on both sides.
    let edit = |d: &mut Document<Box<dyn DynScheme>>| {
        let root = d.tree().root().unwrap();
        let (mut frag, fr) = ltree::xml::XmlTree::with_root("appendix");
        let s1 = frag.add_child(fr, "section").unwrap();
        frag.add_child(s1, "para").unwrap();
        let ids = d.insert_fragment(root, 1, &frag).unwrap();
        let kids = d.tree().child_elements(root).unwrap();
        let victim = *kids.last().unwrap();
        if victim != ids[0] {
            d.delete_subtree(victim).unwrap();
        }
        d.move_subtree(ids[0], root, 0).unwrap();
        d.validate().unwrap();
    };
    edit(&mut remote);
    edit(&mut local);
    assert_eq!(remote.element_count(), local.element_count());
    assert_eq!(
        ltree::xml::to_string(remote.tree()).unwrap(),
        ltree::xml::to_string(local.tree()).unwrap(),
        "identical documents after identical edits"
    );
}

/// A 10k-element document (20k leaf items) bulk loads over the wire in
/// a handful of round trips — the whole point of splice-driven loading
/// composed with the network backend.
#[test]
fn ten_thousand_element_document_loads_in_constant_trips() {
    let tree = generate(&book_catalog_profile(10_000), 5);
    let doc = Document::from_tree(tree, Scheme::build("served(ltree(4,2))").unwrap()).unwrap();
    assert_eq!(doc.element_count(), 10_000);
    let rt = round_trips(&**doc.scheme());
    assert!(
        rt <= 8,
        "a 10k-element document load must stay constant-trip ({rt})"
    );
}

/// A `Document` over a pooled + coalescing client matches its local
/// twin through the same edits — provisional handles, buffer flushes
/// and the page cache are all invisible to the XML layer.
#[test]
fn document_over_coalescing_pooled_client_matches_local() {
    let tree = generate(&book_catalog_profile(250), 31);
    let text = ltree::xml::to_string(&tree).unwrap();
    let mut remote = Document::parse_str(
        &text,
        Scheme::build("served(ltree(4,2),conns=2,coalesce)").unwrap(),
    )
    .unwrap();
    let mut local = Document::parse_str(&text, Scheme::build("ltree(4,2)").unwrap()).unwrap();
    remote.validate().unwrap();
    let edit = |d: &mut Document<Box<dyn DynScheme>>| {
        let root = d.tree().root().unwrap();
        let (mut frag, fr) = ltree::xml::XmlTree::with_root("errata");
        frag.add_child(fr, "item").unwrap();
        let ids = d.insert_fragment(root, 0, &frag).unwrap();
        let kids = d.tree().child_elements(root).unwrap();
        let victim = *kids.last().unwrap();
        if victim != ids[0] {
            d.delete_subtree(victim).unwrap();
        }
        d.validate().unwrap();
    };
    edit(&mut remote);
    edit(&mut local);
    assert_eq!(remote.element_count(), local.element_count());
    assert_eq!(
        ltree::xml::to_string(remote.tree()).unwrap(),
        ltree::xml::to_string(local.tree()).unwrap(),
        "identical documents after identical edits"
    );
}

/// The payoff composition: `sharded(n, served(inner))` routes each
/// segment's splices to its own loopback server through the existing
/// segment directory — a `Document` neither knows nor cares.
#[test]
fn document_over_sharded_served_segments() {
    let tree = generate(&book_catalog_profile(300), 9);
    let text = ltree::xml::to_string(&tree).unwrap();
    let mut doc = Document::parse_str(
        &text,
        Scheme::build("sharded(4,served(ltree(4,2)))").unwrap(),
    )
    .unwrap();
    doc.validate().unwrap();
    let root = doc.tree().root().unwrap();
    let (frag, _) = ltree::xml::XmlTree::with_root("annex");
    doc.insert_fragment(root, 0, &frag).unwrap();
    let kids = doc.tree().child_elements(root).unwrap();
    doc.delete_subtree(*kids.last().unwrap()).unwrap();
    doc.validate().unwrap();
}
