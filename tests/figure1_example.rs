//! Experiment X1 — Figure 1 of the paper as an executable test, through
//! the facade crate.
//!
//! The paper labels `<book><chapter><title/></chapter><title/></book>` as
//! book(0,7) chapter(1,4) title(2,3) title(5,6) with dense sequential
//! integers and converts `book//title` into interval containment. We
//! reproduce the same query semantics with L-Tree labels (same structure,
//! slack between labels).

use ltree::prelude::*;

const DOC: &str = "<book><chapter><title>Intro</title></chapter><title>Top</title></book>";

#[test]
fn interval_containment_answers_book_title() {
    let doc = Document::parse_str(DOC, LTree::new(Params::new(4, 2).unwrap())).unwrap();
    let root = doc.tree().root().unwrap();
    let kids = doc.tree().child_elements(root).unwrap();
    let (chapter, top_title) = (kids[0], kids[1]);
    let inner_title = doc.tree().child_elements(chapter).unwrap()[0];

    // The ancestor test is two label comparisons (paper, Section 1).
    let (bb, be) = doc.span(root).unwrap();
    let (tb, te) = doc.span(inner_title).unwrap();
    assert!(bb < tb && te < be, "book contains the inner title");
    assert!(doc.is_ancestor(root, inner_title).unwrap());
    assert!(doc.is_ancestor(root, top_title).unwrap());
    assert!(doc.is_ancestor(chapter, inner_title).unwrap());
    assert!(!doc.is_ancestor(chapter, top_title).unwrap());

    // `/book//title` via both evaluators.
    let path = Path::parse("/book//title").unwrap();
    let nav = path.eval_navigational(&doc).unwrap();
    let lab = path.eval_labeled(&doc).unwrap();
    assert_eq!(nav, lab);
    assert_eq!(
        nav,
        vec![inner_title, top_title],
        "both titles, in document order"
    );
}

#[test]
fn figure1_shape_is_preserved_under_updates() {
    let mut doc = Document::parse_str(DOC, LTree::new(Params::new(4, 2).unwrap())).unwrap();
    let root = doc.tree().root().unwrap();
    let chapter = doc.tree().child_elements(root).unwrap()[0];

    // Grow a hotspot inside the chapter; the query must keep working.
    for i in 0..50 {
        let sect = doc.insert_element(chapter, i % 2, "section").unwrap();
        doc.insert_element(sect, 0, "title").unwrap();
    }
    doc.validate().unwrap();
    let path = Path::parse("/book//title").unwrap();
    let nav = path.eval_navigational(&doc).unwrap();
    let lab = path.eval_labeled(&doc).unwrap();
    assert_eq!(nav, lab);
    assert_eq!(nav.len(), 52, "two original titles plus fifty new ones");

    // Child-axis through labels needs the maintained depths.
    let child_titles = Path::parse("/book/chapter/section/title").unwrap();
    assert_eq!(
        child_titles.eval_navigational(&doc).unwrap(),
        child_titles.eval_labeled(&doc).unwrap()
    );
}
