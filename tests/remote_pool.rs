//! Pool, policy and coalescing coverage for the remote client redesign:
//!
//! * K reader threads spread over >1 pooled connection (pinned via the
//!   server's per-connection `net/conn<i>` counters), exercising the
//!   server's shared-read `RwLock` path;
//! * fault injection: the server is killed and restarted mid-session on
//!   the *same state*, and a `ClientPolicy` with reconnect+retries
//!   carries the session across — with no stale cache reads;
//! * the coalescing write buffer: a 10k-op per-op edit session with
//!   `coalesce` takes two orders of magnitude fewer round trips than
//!   the plain single-connection client, while producing the same list;
//! * provisional handles: coalesced inserts hand out handles that stay
//!   valid forever, across flushes and in every read path.
//!
//! Every server binds port 0 and plumbs the OS-chosen port back through
//! `LabelServer::local_addr()` — no fixed ports anywhere.

use ltree::prelude::*;
use ltree::remote::ClientPolicy;
use ltree::LTreeError;

/// Client round trips so far, via the `net/round-trips` breakdown entry
/// (value in `node_touches`). The read itself costs one trip, included.
fn round_trips(s: &dyn DynScheme) -> u64 {
    s.stats_breakdown()
        .iter()
        .find(|(name, _)| name == "net/round-trips")
        .map(|(_, st)| st.node_touches)
        .expect("remote schemes expose net/round-trips")
}

fn ltree() -> Box<dyn DynScheme> {
    Scheme::build("ltree(4,2)").unwrap()
}

/// K reader threads over a `conns=4` client: the pool's rotating
/// checkout must spread them over several connections — observable in
/// the server's per-connection counters — so the server's `RwLock`
/// shared-reader path actually runs concurrently.
#[test]
fn pooled_readers_spread_across_connections() {
    let scheme = {
        let mut s = RemoteScheme::served_with(
            ltree(),
            ClientPolicy {
                conns: 4,
                ..ClientPolicy::default()
            },
        )
        .unwrap();
        s.bulk_build(500).unwrap();
        s
    };
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..50 {
                    assert_eq!(scheme.live_len(), 500);
                }
            });
        }
    });
    // Server-side view: count connections that carried real traffic
    // (more than the 1-trip handshake).
    let busy = scheme
        .server()
        .unwrap()
        .stats_breakdown()
        .iter()
        .filter(|(name, st)| {
            name.starts_with("net/conn") && name.ends_with("round-trips") && st.node_touches > 1
        })
        .count();
    assert!(
        busy > 1,
        "reads must spread across the pool, not pile on one connection ({busy} busy)"
    );
    // And the client-side aggregate saw every trip.
    assert!(scheme.transport_stats().round_trips >= 400);
}

/// Kill the server mid-session, restart it **on the same state and
/// port**, and keep using the same client: the policy reconnects and
/// retries reads transparently, the page cache is invalidated on
/// reconnect (a label cached before the crash must not be served after
/// it), and writes work again on the fresh connection.
#[test]
fn policy_reconnects_after_server_restart_without_stale_reads() {
    let server = LabelServer::bind("127.0.0.1:0", ltree()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = RemoteScheme::connect_with(
        &addr,
        ClientPolicy {
            conns: 2,
            retries: 3,
            reconnect: true,
            ..ClientPolicy::default()
        },
    )
    .unwrap();
    let hs = client.bulk_build(100).unwrap();
    // Read every label (fills the page cache — 100 items fit one page).
    let before: Vec<u128> = hs.iter().map(|&h| client.label_of(h).unwrap()).collect();

    // Kill the server, take the scheme back out, edit it while the
    // client cannot see it, and restart on the same port.
    let mut scheme = server.into_scheme().unwrap();
    scheme.delete(hs[50]).unwrap();
    let added = scheme
        .splice(Splice::InsertAfter {
            anchor: hs[10],
            count: 50,
        })
        .unwrap()
        .into_inserted();
    let server2 = LabelServer::bind(&addr, scheme).unwrap();
    assert_eq!(server2.local_addr().to_string(), addr);

    // The old sockets are dead: the next reads ride the reconnect path.
    assert_eq!(client.live_len(), 149, "reconnected read sees new state");
    // No stale cache reads: the surviving client and a brand-new one
    // agree on every label — including the ones the offline insert
    // relabeled, which the pre-crash cache remembers differently.
    let fresh = RemoteScheme::connect(&addr).unwrap();
    let after: Vec<Option<u128>> = hs.iter().map(|&h| client.label_of(h).ok()).collect();
    let fresh_view: Vec<Option<u128>> = hs.iter().map(|&h| fresh.label_of(h).ok()).collect();
    assert_eq!(after, fresh_view, "non-stale labels after reconnect");
    assert_ne!(
        before.iter().map(|&l| Some(l)).collect::<Vec<_>>(),
        after,
        "the offline edit must have moved labels, or this test proves nothing"
    );
    assert_eq!(
        client.label_of(added[20]).unwrap(),
        fresh.label_of(added[20]).unwrap()
    );
    assert!(
        client.transport_stats().reconnects >= 1,
        "the pool must report the reconnect(s): {:?}",
        client.transport_stats()
    );
    // Writes flow again through the re-established connection.
    let h = client.insert_after(hs[20]).unwrap();
    assert!(client.label_of(hs[20]).unwrap() < client.label_of(h).unwrap());
    assert_eq!(fresh.live_len(), 150);
}

/// The durable flavor of kill-and-restart: the server hosts a
/// `DurableScheme` over a real on-disk directory, is killed *without*
/// handing its in-memory scheme to the successor, and the replacement
/// recovers purely from the write-ahead log + snapshot via
/// [`LabelServer::recover_from_dir`]. Every operation the old server
/// acknowledged must be visible to the reconnected client, the
/// surviving client's caches must agree with a brand-new client even
/// though recovery re-derived every label (checkpoint + replay, not the
/// original incremental construction), and writes must flow again.
#[test]
fn policy_reconnects_after_recovery_from_wal_dir() {
    use ltree::remote::LabelServer;

    let dir = ltree::remote::scratch_dir("pool-recovery");
    let dopts = || DurableOptions {
        sync: SyncPolicy::Always,
        // Small enough that the session below checkpoints several
        // times, so recovery genuinely mixes snapshot and log replay.
        checkpoint_every: 8,
    };
    let server = LabelServer::recover_from_dir("127.0.0.1:0", ltree(), &dir, dopts()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = RemoteScheme::connect_with(
        &addr,
        ClientPolicy {
            conns: 2,
            retries: 3,
            reconnect: true,
            ..ClientPolicy::default()
        },
    )
    .unwrap();
    let hs = client.bulk_build(60).unwrap();
    let added = client.insert_many_after(hs[10], 12).unwrap();
    client.delete(hs[30]).unwrap();
    client.delete_run(hs[40], 5).unwrap();
    // Six more records push the log past checkpoint_every=8, so the
    // recovery below starts from a snapshot (bulk-built, evenly
    // relabeled) rather than replaying the session verbatim.
    for &h in hs.iter().take(6) {
        client.insert_after(h).unwrap();
    }
    // Fill the page cache with the pre-crash labels.
    let before: Vec<Option<u128>> = hs.iter().map(|&h| client.label_of(h).ok()).collect();
    let live_before = client.live_len();

    // Kill the server and throw its in-memory scheme away: the only
    // route back is the directory.
    drop(server);
    let server2 = LabelServer::recover_from_dir(&addr, ltree(), &dir, dopts()).unwrap();
    assert_eq!(server2.local_addr().to_string(), addr);

    // Every acknowledged op survived.
    assert_eq!(client.live_len(), live_before, "recovered acked state");
    // The surviving client and a fresh one agree on every label — the
    // pre-crash cache must not leak through the reconnect, and recovery
    // rebuilt labels from a snapshot, so stale entries would differ.
    let fresh = RemoteScheme::connect(&addr).unwrap();
    let after: Vec<Option<u128>> = hs.iter().map(|&h| client.label_of(h).ok()).collect();
    let fresh_view: Vec<Option<u128>> = hs.iter().map(|&h| fresh.label_of(h).ok()).collect();
    assert_eq!(after, fresh_view, "non-stale labels after recovery");
    assert_ne!(
        before, after,
        "recovery relabeled (snapshot bulk-build + replay), or this proves nothing"
    );
    // Handle identity survived recovery: deleted stays deleted, the
    // splice's handles still resolve, and order is intact.
    assert!(client.label_of(hs[30]).is_err());
    assert_eq!(
        client.label_of(added[3]).unwrap(),
        fresh.label_of(added[3]).unwrap()
    );
    assert!(client.transport_stats().reconnects >= 1);
    // Writes flow again, durably: they land in the recovered WAL.
    let h = client.insert_after(hs[20]).unwrap();
    assert!(client.label_of(hs[20]).unwrap() < client.label_of(h).unwrap());
    assert_eq!(fresh.live_len(), live_before + 1);
    drop(client);
    drop(fresh);
    drop(server2);
    std::fs::remove_dir_all(&dir).ok();
}

/// Without a reconnect policy, the first failure is terminal — the old
/// single-connection behavior, preserved as the default.
#[test]
fn default_policy_stays_fail_fast() {
    let server = LabelServer::bind("127.0.0.1:0", ltree()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = RemoteScheme::connect(&addr).unwrap();
    client.bulk_build(10).unwrap();
    let scheme = server.into_scheme().unwrap();
    let _server2 = LabelServer::bind(&addr, scheme).unwrap();
    // The server is back, but the default policy never redials.
    assert!(matches!(
        client.insert_first(),
        Err(LTreeError::Remote { .. })
    ));
    assert_eq!(client.transport_stats().reconnects, 0);
}

/// The acceptance pin for coalescing: an identical 10k-op **per-op**
/// edit session (chained single inserts, then adjacent single deletes)
/// costs two orders of magnitude fewer round trips with `coalesce` than
/// the plain `conns=1` client — measured via `net/round-trips` — while
/// ending in the same list.
#[test]
fn coalescing_cuts_round_trips_of_per_op_sessions() {
    let session = |spec: &str| -> (u64, usize, bool) {
        let mut s = Scheme::build(spec).unwrap();
        let mut cur = s.insert_first().unwrap();
        for _ in 0..9_499 {
            cur = s.insert_after(cur).unwrap();
        }
        // A full read (flushes any backlog, walks the list page-wise)…
        let live: Vec<LeafHandle> = s.cursor().collect();
        assert_eq!(live.len(), 9_500);
        // …then 500 per-op deletes in list order, no reads interleaved.
        for &h in &live[..500] {
            s.delete(h).unwrap();
        }
        let len = s.live_len();
        // Measure here: both sessions pay the same page-walk cost for
        // the validation below, which would only dilute the comparison.
        let rtt = round_trips(&*s);
        // Order contract still holds through the buffer.
        let mut prev = None;
        let mut increasing = true;
        for h in s.cursor().collect::<Vec<_>>() {
            let l = s.label_of(h).unwrap();
            increasing &= prev.is_none_or(|p| p < l);
            prev = Some(l);
        }
        (rtt, len, increasing)
    };

    let (plain_rtt, plain_len, plain_incr) = session("served(ltree(4,2))");
    let (coal_rtt, coal_len, coal_incr) = session("served(ltree(4,2),coalesce)");
    assert_eq!(plain_len, 9_000);
    assert_eq!(coal_len, 9_000);
    assert!(plain_incr);
    assert!(coal_incr);
    assert!(
        plain_rtt >= 10_000,
        "the per-op client pays one trip per op ({plain_rtt})"
    );
    assert!(
        coal_rtt * 100 <= plain_rtt,
        "coalescing must amortize at least 100x ({coal_rtt} vs {plain_rtt})"
    );
}

/// Provisional handles are real handles to the caller: usable as
/// anchors before the flush, resolvable in every read path after it,
/// and stable for the client's lifetime.
#[test]
fn provisional_handles_survive_flushes_and_all_read_paths() {
    let mut s = RemoteScheme::served_with(
        ltree(),
        ClientPolicy {
            coalesce: true,
            ..ClientPolicy::default()
        },
    )
    .unwrap();
    let hs = s.bulk_build(8).unwrap();
    // Buffered: a chained run, a batch extension, and a mid-run anchor.
    let a = s.insert_after(hs[3]).unwrap();
    let b = s.insert_after(a).unwrap();
    let batch = s.insert_many_after(b, 3).unwrap();
    let mid = s.insert_after(a).unwrap(); // anchors inside the pending run
    assert_eq!(s.live_len(), 14, "len flushes the backlog");
    // Every handle minted above reads back in order: hs[3] < a < mid < b.
    let (la, lb) = (s.label_of(a).unwrap(), s.label_of(b).unwrap());
    let lmid = s.label_of(mid).unwrap();
    assert!(s.label_of(hs[3]).unwrap() < la);
    assert!(la < lmid && lmid < lb);
    assert!(lb < s.label_of(batch[0]).unwrap());
    // Provisionals keep working as anchors *after* the flush too.
    let c = s.insert_after(batch[2]).unwrap();
    s.delete(c).unwrap();
    s.flush().unwrap();
    assert_eq!(s.live_len(), 14);
    // A second delete of the (flushed) provisional surfaces the
    // server's tombstone error at the next flush.
    s.delete(c).unwrap();
    assert!(matches!(s.flush(), Err(LTreeError::DeletedLeaf)));
    // The cursor and next_in_order present items under the provisional
    // names the caller holds — one name per item, everywhere.
    assert_eq!(s.next_in_order(a), Some(mid));
    assert_eq!(s.next_in_order(mid), Some(b));
    let walked: Vec<LeafHandle> = s.cursor().collect();
    assert!(walked.contains(&a) && walked.contains(&mid) && walked.contains(&batch[1]));
}

/// Delete-run extension must not trust cached adjacency once an insert
/// is pending: the insert lands first at flush and would sit inside the
/// cached successor gap, so a naive run extension would delete the
/// fresh item instead of the one the caller named.
#[test]
fn coalesced_deletes_respect_pending_inserts() {
    let mut s = RemoteScheme::served_with(
        ltree(),
        ClientPolicy {
            coalesce: true,
            ..ClientPolicy::default()
        },
    )
    .unwrap();
    let hs = s.bulk_build(8).unwrap();
    // Prime the cache so hs[2] → hs[3] adjacency is known.
    s.label_of(hs[2]).unwrap();
    // Queue: insert after hs[2], then delete hs[2] and its (cached)
    // successor hs[3]. The new item must survive; hs[2] and hs[3] die.
    let fresh = s.insert_after(hs[2]).unwrap();
    s.delete(hs[2]).unwrap();
    s.delete(hs[3]).unwrap();
    s.flush().unwrap();
    assert_eq!(s.live_len(), 7);
    assert!(
        s.label_of(fresh).is_ok(),
        "the buffered insert must survive"
    );
    // The named items are tombstoned — re-deleting them is the probe
    // (the cursor yields tombstones by contract, so it can't be used):
    for doomed in [hs[2], hs[3]] {
        s.delete(doomed).unwrap();
        assert!(
            matches!(s.flush(), Err(LTreeError::DeletedLeaf)),
            "{doomed:?} must already be deleted"
        );
    }
    // And the fresh item is genuinely alive: deleting it works.
    s.delete(fresh).unwrap();
    s.flush().unwrap();
    assert_eq!(s.live_len(), 6);
}

/// A buffered write whose error can only surface at flush surfaces it
/// on the *triggering read*, with earlier backlog entries applied (the
/// same prefix contract as `pipeline_splices`).
#[test]
fn coalesced_errors_surface_at_flush_with_prefix_applied() {
    let mut s = Scheme::build("served(ltree(4,2),coalesce)").unwrap();
    let hs = s.bulk_build(4).unwrap();
    let good = s.insert_after(hs[0]).unwrap();
    // A bogus anchor is accepted into the buffer...
    let _bad = s.insert_after(LeafHandle(u64::MAX - 1)).unwrap();
    // ...and explodes at the flush a read triggers.
    assert!(matches!(s.label_of(hs[1]), Err(LTreeError::UnknownHandle)));
    // The good prefix was applied; the session keeps working.
    assert_eq!(s.live_len(), 5);
    assert!(s.label_of(good).is_ok());
}

/// `remote(a|b|c)` rotation: consecutive builds of the same address
/// list land on consecutive servers, which is what lets a `ServerGroup`
/// hand out one spec string for a one-server-per-segment deployment.
#[test]
fn server_group_spreads_segments_one_per_server() {
    let group = ltree::remote::ServerGroup::launch(3, "ltree(4,2)", &default_registry()).unwrap();
    let mut scheme = default_registry().build(&group.spec()).unwrap();
    let hs = scheme.bulk_build(90).unwrap();
    assert_eq!(scheme.cursor().count(), 90);
    // Every server holds a non-empty slice of the list.
    let per_host: Vec<usize> = group
        .addrs()
        .iter()
        .map(|a| RemoteScheme::connect(a).unwrap().live_len())
        .collect();
    assert_eq!(per_host.iter().sum::<usize>(), 90, "{per_host:?}");
    assert!(per_host.iter().all(|&n| n > 0), "{per_host:?}");
    // Edits route through the segment directory to the right host.
    scheme.delete(hs[45]).unwrap();
    assert_eq!(scheme.live_len(), 89);
    // Options ride along in the deployment spec (fresh group — the
    // first one's stores are populated).
    let group2 = ltree::remote::ServerGroup::launch(2, "gap", &default_registry()).unwrap();
    let mut pooled = default_registry()
        .build(&group2.spec_with("conns=2,retries=1"))
        .unwrap();
    assert_eq!(pooled.bulk_build(12).unwrap().len(), 12);
}
