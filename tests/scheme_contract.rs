//! Generic conformance suite for the ordered-labeling trait family,
//! run against **every scheme in the default registry** (all five:
//! `ltree`, `virtual`, `naive`, `gap`, `list-label`) purely through
//! `Box<dyn DynScheme>` — no concrete scheme type appears in the
//! exercised code paths.
//!
//! Covered contracts:
//!
//! * **order** — after any stream of insertions/deletions, live labels
//!   strictly increase along list order and handles stay stable across
//!   relabelings;
//! * **cursor** — the streaming cursor yields handles in strictly
//!   increasing label order and visits every live item in list order;
//! * **splice** — a native `Splice::InsertAfter` batch is list-equivalent
//!   to the same insertions applied as a single-insert loop, and
//!   `Splice::DeleteRun` matches looped deletes;
//! * **stats** — `SchemeStats` counters are monotone between resets.
//!
//! Streams come from the workspace's seeded SplitMix64; every failure
//! reproduces from the printed `(spec, seed)` pair.

use ltree::prelude::*;
use ltree::rng::SplitMix64;

/// Every scheme family the workspace ships, plus parameter variants that
/// stress different shapes (wide L-Tree, minimal gap, sharded composites
/// with thresholds low enough that the contract streams force segment
/// splits and merges, and served composites that put a real TCP
/// client/server pair — loopback, in-process — under every stream).
const SPECS: &[&str] = &[
    "ltree(4,2)",
    "ltree(32,4)",
    "virtual(4,2)",
    "naive",
    "gap",
    "gap(2)",
    "list-label",
    "sharded(4,ltree(4,2))",
    "sharded(2,24,4,ltree(4,2))",
    "sharded(3,16,2,gap)",
    "served(ltree(4,2))",
    "served(gap)",
    "sharded(4,served(ltree(4,2)))",
    "checked(ltree(4,2))",
    "sharded(2,24,4,checked(ltree(4,2)))",
    "checked(served(gap),every=4)",
    // Dir-less durable stores write to a per-build scratch directory
    // that is removed when the scheme drops, so a static spec string is
    // safe here; checkpoint_every=5 keeps snapshots in the loop too.
    "durable(ltree(4,2))",
    "durable(gap,sync=never,checkpoint_every=5)",
    "served(durable(ltree(4,2)))",
    "checked(durable(gap))",
    // The tracing wrapper must be behaviorally transparent: the whole
    // contract holds unchanged with it in the stack, at any layer.
    "traced(ltree(4,2))",
    "traced(gap,slow_us=0)",
    "served(traced(ltree(4,2)))",
    "traced(durable(ltree(4,2)))",
    "sharded(2,24,4,traced(ltree(4,2)))",
];

fn build(spec: &str) -> Box<dyn DynScheme> {
    default_registry()
        .build(spec)
        .unwrap_or_else(|e| panic!("{spec}: {e}"))
}

#[derive(Debug, Clone)]
enum Op {
    After(usize),
    Before(usize),
    Many(usize, usize),
    Delete(usize),
    DeleteRun(usize, usize),
}

fn random_ops(rng: &mut SplitMix64, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let i = rng.gen_range(0..1 << 16);
            match rng.gen_range(0..10) {
                0..=3 => Op::After(i),
                4..=5 => Op::Before(i),
                6 => Op::Many(i, rng.gen_range(1..20)),
                7 => Op::DeleteRun(i, rng.gen_range(1..8)),
                _ => Op::Delete(i),
            }
        })
        .collect()
}

/// First live index at or after `i % len`, wrapping; anchoring on
/// deleted items is scheme-specific (the L-Tree allows it, schemes with
/// physical removal do not), so the contract only anchors on live ones.
fn live_at(order: &[(LeafHandle, bool)], i: usize) -> Option<usize> {
    let n = order.len();
    (0..n).map(|d| (i + d) % n).find(|&j| order[j].1)
}

/// A scheme under test plus the reference list the driver maintains.
struct Harness<S: LabelingScheme> {
    scheme: S,
    /// (handle, alive) in list order — the ground truth.
    order: Vec<(LeafHandle, bool)>,
    tag: String,
}

impl<S: LabelingScheme> Harness<S> {
    fn new(mut scheme: S, initial: usize, tag: String) -> Self {
        let order = scheme
            .bulk_build(initial.max(1))
            .unwrap()
            .into_iter()
            .map(|h| (h, true))
            .collect();
        Harness { scheme, order, tag }
    }

    /// Apply one op. `use_batch` selects the native batch path for
    /// `Many`/`DeleteRun`; otherwise both are applied as loops of
    /// singles (the equivalence tests run one harness each way).
    fn apply(&mut self, op: &Op, use_batch: bool) {
        match *op {
            Op::After(i) => {
                let Some(i) = live_at(&self.order, i) else {
                    return;
                };
                let h = self.scheme.insert_after(self.order[i].0).unwrap();
                self.order.insert(i + 1, (h, true));
            }
            Op::Before(i) => {
                let Some(i) = live_at(&self.order, i) else {
                    return;
                };
                let h = self.scheme.insert_before(self.order[i].0).unwrap();
                self.order.insert(i, (h, true));
            }
            Op::Many(i, k) => {
                let Some(i) = live_at(&self.order, i) else {
                    return;
                };
                let anchor = self.order[i].0;
                let hs = if use_batch {
                    self.scheme
                        .splice(Splice::InsertAfter { anchor, count: k })
                        .unwrap()
                        .into_inserted()
                } else {
                    let mut out = Vec::with_capacity(k);
                    let mut cur = anchor;
                    for _ in 0..k {
                        cur = self.scheme.insert_after(cur).unwrap();
                        out.push(cur);
                    }
                    out
                };
                assert_eq!(hs.len(), k, "{}: batch size", self.tag);
                for (j, h) in hs.into_iter().enumerate() {
                    self.order.insert(i + 1 + j, (h, true));
                }
            }
            Op::Delete(i) => {
                let Some(i) = live_at(&self.order, i) else {
                    return;
                };
                if self.scheme.delete(self.order[i].0).is_ok() {
                    self.order[i].1 = false;
                }
            }
            Op::DeleteRun(i, k) => {
                let Some(i) = live_at(&self.order, i) else {
                    return;
                };
                let deleted = if use_batch {
                    self.scheme
                        .splice(Splice::DeleteRun {
                            first: self.order[i].0,
                            count: k,
                        })
                        .unwrap()
                        .deleted()
                } else {
                    // Reference semantics: delete the next k live items
                    // at or after position i, in list order.
                    let mut deleted = 0usize;
                    for j in i..self.order.len() {
                        if deleted == k {
                            break;
                        }
                        if self.order[j].1 {
                            self.scheme.delete(self.order[j].0).unwrap();
                            deleted += 1;
                        }
                    }
                    deleted
                };
                // Mirror the deletion in the reference list.
                let mut remaining = deleted;
                for j in i..self.order.len() {
                    if remaining == 0 {
                        break;
                    }
                    if self.order[j].1 {
                        self.order[j].1 = false;
                        remaining -= 1;
                    }
                }
                assert_eq!(
                    remaining, 0,
                    "{}: scheme deleted more than tracked",
                    self.tag
                );
            }
        }
    }

    /// The contract: live labels strictly increase in list order.
    fn check_order(&self) {
        let mut prev: Option<u128> = None;
        for &(h, alive) in &self.order {
            if !alive {
                continue;
            }
            let l = match self.scheme.label_of(h) {
                Ok(l) => l,
                Err(_) => continue, // schemes may invalidate deleted handles only
            };
            if let Some(p) = prev {
                assert!(p < l, "{}: order contract broken ({p} >= {l})", self.tag);
            }
            prev = Some(l);
        }
    }

    /// The cursor contract: strictly increasing labels, and the live
    /// subsequence equals the reference list order exactly.
    fn check_cursor(&self) {
        let live: std::collections::HashSet<u64> = self
            .order
            .iter()
            .filter(|&&(_, a)| a)
            .map(|&(h, _)| h.0)
            .collect();
        let mut cursor_live = Vec::new();
        let mut prev: Option<u128> = None;
        for h in Cursor::new(&self.scheme) {
            let l = self
                .scheme
                .label_of(h)
                .unwrap_or_else(|e| panic!("{}: cursor yielded unknown handle: {e}", self.tag));
            if let Some(p) = prev {
                assert!(
                    p < l,
                    "{}: cursor out of label order ({p} >= {l})",
                    self.tag
                );
            }
            prev = Some(l);
            if live.contains(&h.0) {
                cursor_live.push(h);
            }
        }
        let expect: Vec<LeafHandle> = self
            .order
            .iter()
            .filter(|&&(_, a)| a)
            .map(|&(h, _)| h)
            .collect();
        assert_eq!(
            cursor_live, expect,
            "{}: cursor misses or reorders live items",
            self.tag
        );
    }

    fn check_counts(&self) {
        let live = self.order.iter().filter(|&&(_, a)| a).count();
        assert_eq!(
            self.scheme.live_len(),
            live,
            "{}: live_len mismatch",
            self.tag
        );
        assert!(self.scheme.label_space_bits() <= 128, "{}", self.tag);
        assert!(self.scheme.memory_bytes() > 0, "{}", self.tag);
    }
}

/// Single-scheme conformance: order + cursor + counts + stats
/// monotonicity over a randomized stream.
fn exercise(spec: &str, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let initial = rng.gen_range(1..50);
    let stream_len = rng.gen_range(1..60);
    let ops = random_ops(&mut rng, stream_len);
    let tag = format!("{spec} seed {seed}");
    let mut h = Harness::new(build(spec), initial, tag.clone());
    let mut prev_stats = h.scheme.scheme_stats();
    for (step, op) in ops.iter().enumerate() {
        h.apply(op, true);
        h.check_order();
        let stats = h.scheme.scheme_stats();
        assert!(
            stats.dominates(&prev_stats),
            "{tag}: stats went backwards at step {step}: {prev_stats:?} -> {stats:?}"
        );
        prev_stats = stats;
        if step % 8 == 0 {
            h.check_cursor();
        }
    }
    h.check_cursor();
    h.check_counts();
    // Reset really resets; the counters start climbing again from zero.
    h.scheme.reset_scheme_stats();
    assert_eq!(h.scheme.scheme_stats().inserts, 0, "{tag}: reset");
}

#[test]
fn conformance_across_the_registry() {
    for spec in SPECS {
        for seed in 0..8u64 {
            exercise(spec, seed);
        }
    }
}

/// Every spec again, wrapped in the `checked(...)` contract auditor: the
/// auditor's shadow model rides the identical streams on ltree, gap,
/// sharded and served backends, and a violation anywhere would surface
/// as a `ContractViolation` panic out of the harness's unwraps. This
/// both audits the schemes a second way and exercises the auditor
/// itself against every backend family.
#[test]
fn conformance_with_every_spec_wrapped_in_checked() {
    for spec in SPECS {
        if spec.starts_with("checked") {
            continue; // already wrapped
        }
        for seed in 0..4u64 {
            exercise(&format!("checked({spec})"), seed);
        }
    }
}

/// The durability wrapper with an explicit `dir=` passes the identical
/// conformance streams against a real on-disk directory (a fresh
/// scratch dir per stream — fixed paths in tests are lint errors), and
/// the `checked(...)` auditor rides the same on-disk store unchanged.
#[test]
fn conformance_durable_on_disk() {
    for seed in 0..3u64 {
        let dir = ltree::remote::scratch_dir("conformance");
        let path = dir.display();
        exercise(&format!("durable(ltree(4,2),dir={path})"), seed);
        exercise(&format!("checked(durable(gap,dir={path}-auditee))"), seed);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(format!("{path}-auditee")).ok();
    }
}

/// The pooled TCP client (`remote(host:port,conns=4)`) passes the
/// identical conformance streams — a real external server per stream
/// (bound on port 0, address plumbed back via `local_addr()`), four
/// client connections over it, zero suite changes.
#[test]
fn conformance_remote_pooled_client() {
    let boot = || {
        ltree::remote::LabelServer::bind("127.0.0.1:0", build("ltree(4,2)"))
            .unwrap_or_else(|e| panic!("bind: {e}"))
    };
    for seed in 0..4u64 {
        let server = boot();
        exercise(&format!("remote({},conns=4)", server.local_addr()), seed);
    }
    // Batch-vs-loop equivalence, each harness against its own server.
    for seed in 100..103u64 {
        let mut rng = SplitMix64::new(seed);
        let initial = rng.gen_range(1..30);
        let stream_len = rng.gen_range(1..40);
        let ops = random_ops(&mut rng, stream_len);
        let (sa, sb) = (boot(), boot());
        let spec = |s: &ltree::remote::LabelServer| format!("remote({},conns=4)", s.local_addr());
        let mut batched = Harness::new(build(&spec(&sa)), initial, format!("remote#batch {seed}"));
        let mut looped = Harness::new(build(&spec(&sb)), initial, format!("remote#loop {seed}"));
        for op in &ops {
            batched.apply(op, true);
            looped.apply(op, false);
            batched.check_order();
            looped.check_order();
        }
        batched.check_cursor();
        looped.check_cursor();
        assert_eq!(batched.scheme.live_len(), looped.scheme.live_len());
        assert_eq!(batched.scheme.len(), looped.scheme.len());
    }
}

/// Batch-vs-loop equivalence: the same logical stream applied with the
/// native splice path and with single-insert loops must produce the
/// same list (same live count, same relative order of the same logical
/// positions) — labels may differ, the *list* may not.
#[test]
fn splice_batch_equals_loop() {
    for spec in SPECS {
        for seed in 100..106u64 {
            let mut rng = SplitMix64::new(seed);
            let initial = rng.gen_range(1..30);
            let stream_len = rng.gen_range(1..40);
            let ops = random_ops(&mut rng, stream_len);
            let mut batched = Harness::new(build(spec), initial, format!("{spec}#batch {seed}"));
            let mut looped = Harness::new(build(spec), initial, format!("{spec}#loop {seed}"));
            for op in &ops {
                batched.apply(op, true);
                looped.apply(op, false);
                batched.check_order();
                looped.check_order();
                // Same logical list on both sides.
                assert_eq!(
                    batched.order.iter().map(|&(_, a)| a).collect::<Vec<_>>(),
                    looped.order.iter().map(|&(_, a)| a).collect::<Vec<_>>(),
                    "{spec} seed {seed}: batch and loop lists diverged"
                );
            }
            assert_eq!(
                batched.scheme.live_len(),
                looped.scheme.live_len(),
                "{spec} {seed}"
            );
            assert_eq!(batched.scheme.len(), looped.scheme.len(), "{spec} {seed}");
            batched.check_cursor();
            looped.check_cursor();
        }
    }
}

/// Splice-vs-incremental XML equivalence: the same document built
/// through the splice-driven bulk path and through the per-node path
/// must agree — for every registry scheme — on element count, document
/// order (by labels), region containment and serialization. Labels may
/// differ (bulk loading leaves different slack); the *document* may not.
#[test]
fn xml_bulk_and_incremental_loads_are_equivalent() {
    use ltree::gen::{book_catalog_profile, generate};

    let tree = generate(&book_catalog_profile(150), 17);
    let text = ltree::xml::to_string(&tree).unwrap();
    for spec in SPECS {
        let bulk =
            Document::parse_str(&text, build(spec)).unwrap_or_else(|e| panic!("{spec} bulk: {e}"));
        let incr = Document::parse_str_incremental(&text, build(spec))
            .unwrap_or_else(|e| panic!("{spec} incremental: {e}"));
        bulk.validate().unwrap_or_else(|e| panic!("{spec}: {e}"));
        incr.validate().unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert_eq!(bulk.element_count(), incr.element_count(), "{spec}");

        // Identical document order: the label-sorted element sequence of
        // both paths matches the DOM's DFS order (and hence each other).
        let order = |d: &Document<Box<dyn DynScheme>>| -> Vec<_> {
            d.all_spans().unwrap().into_iter().map(|s| s.node).collect()
        };
        let dfs = bulk.tree().all_elements();
        assert_eq!(order(&bulk), dfs, "{spec}: bulk order");
        assert_eq!(order(&incr), dfs, "{spec}: incremental order");

        // Region containment answers agree on a sample of pairs.
        for (i, &a) in dfs.iter().step_by(13).enumerate() {
            for &b in dfs.iter().skip(i).step_by(29) {
                assert_eq!(
                    bulk.is_ancestor(a, b).unwrap(),
                    incr.is_ancestor(a, b).unwrap(),
                    "{spec}: ancestor({a:?}, {b:?})"
                );
            }
        }

        // Identical serialization.
        assert_eq!(
            ltree::xml::to_string(bulk.tree()).unwrap(),
            ltree::xml::to_string(incr.tree()).unwrap(),
            "{spec}: serialization"
        );
    }
}

/// Segment-boundary conformance for the sharded composite: insert runs
/// land intact in the anchor's segment (splitting afterwards), delete
/// runs are split at segment boundaries — and both must stay
/// list-equivalent to the single-op loop while the cursor keeps global
/// order. The typed harness also asserts that the streams really did
/// cross boundaries (splits + merges happened).
#[test]
fn sharded_splices_split_at_segment_boundaries() {
    use ltree::sharded::{ShardedConfig, ShardedScheme};
    use ltree::{LTree, Params};

    let cfg = ShardedConfig {
        initial_shards: 4,
        split_above: 16,
        merge_below: 2,
    };
    let factory = || Ok(LTree::new(Params::new(4, 2).unwrap()));
    let mut batched = Harness::new(
        ShardedScheme::with_config(cfg, factory).unwrap(),
        40,
        "sharded#batch".into(),
    );
    let mut looped = Harness::new(
        ShardedScheme::with_config(cfg, factory).unwrap(),
        40,
        "sharded#loop".into(),
    );
    assert_eq!(batched.scheme.shard_count(), 4, "10 per segment");

    // Boundary-straddling runs: inserts big enough to split any segment
    // (40 > split_above), a delete run spanning three segments, then
    // point edits around the fresh boundaries, then a drain that forces
    // merges. Positions are logical (reference-list) indices.
    let ops = [
        Op::Many(5, 40),      // insert run inside segment 0 → splits
        Op::DeleteRun(2, 55), // straddles every boundary the split made
        Op::Many(10, 17),     // insert at the (new) boundary region
        Op::Before(1),
        Op::After(12),
        Op::DeleteRun(0, 30), // drain from the front → merges
    ];
    for op in &ops {
        batched.apply(op, true);
        looped.apply(op, false);
        batched.check_order();
        looped.check_order();
        batched.check_cursor();
        looped.check_cursor();
        assert_eq!(
            batched.order.iter().map(|&(_, a)| a).collect::<Vec<_>>(),
            looped.order.iter().map(|&(_, a)| a).collect::<Vec<_>>(),
            "batch and loop lists diverged"
        );
    }
    assert_eq!(batched.scheme.live_len(), looped.scheme.live_len());
    assert_eq!(batched.scheme.len(), looped.scheme.len());
    // The stream really exercised rebalancing: more segments than we
    // started with at the peak is implied by ≤16 per segment …
    for (tag, h) in [("batch", &batched), ("loop", &looped)] {
        assert!(
            h.scheme.shard_live_counts().iter().all(|&n| n <= 16),
            "{tag}: segment over threshold: {:?}",
            h.scheme.shard_live_counts()
        );
    }
    // … and per-segment stats cover every live segment.
    assert_eq!(
        batched.scheme.stats_breakdown().len(),
        batched.scheme.shard_count()
    );
}

/// The same randomized batch-vs-loop equivalence the registry specs get,
/// but at thresholds so tight that almost every op crosses a segment
/// boundary — belt and braces over `splice_batch_equals_loop`.
#[test]
fn sharded_tight_threshold_streams_stay_equivalent() {
    for seed in 200..206u64 {
        let mut rng = SplitMix64::new(seed);
        let initial = rng.gen_range(8..40);
        let stream_len = rng.gen_range(10..40);
        let ops = random_ops(&mut rng, stream_len);
        let spec = "sharded(3,8,2,ltree(4,2))";
        let mut batched = Harness::new(build(spec), initial, format!("{spec}#batch {seed}"));
        let mut looped = Harness::new(build(spec), initial, format!("{spec}#loop {seed}"));
        for op in &ops {
            batched.apply(op, true);
            looped.apply(op, false);
            batched.check_order();
            looped.check_order();
        }
        batched.check_cursor();
        looped.check_cursor();
        assert_eq!(
            batched.scheme.live_len(),
            looped.scheme.live_len(),
            "seed {seed}"
        );
    }
}

#[test]
fn delete_run_over_the_end_reports_short_count() {
    for spec in SPECS {
        let mut s = build(spec);
        let hs = s.bulk_build(6).unwrap();
        let deleted = s
            .splice(Splice::DeleteRun {
                first: hs[3],
                count: 100,
            })
            .unwrap()
            .deleted();
        assert_eq!(deleted, 3, "{spec}: run must stop at the list end");
        assert_eq!(s.live_len(), 3, "{spec}");
    }
}

#[test]
fn empty_batch_is_a_typed_error() {
    for spec in SPECS {
        let mut s = build(spec);
        let hs = s.bulk_build(3).unwrap();
        assert!(
            matches!(
                s.splice(Splice::InsertAfter {
                    anchor: hs[0],
                    count: 0
                }),
                Err(ltree::LTreeError::EmptyBatch)
            ),
            "{spec}: zero batch must be rejected"
        );
    }
}

#[test]
fn invariants_hold_after_contract_streams() {
    // A deterministic heavy stream with full invariant checking for the
    // tree-shaped schemes (which expose checkers beyond the trait).
    let ops: Vec<Op> = (0..400)
        .map(|i| match i % 9 {
            0 => Op::Before(i),
            1..=3 => Op::After(i * 31),
            4 => Op::Many(i, (i % 9) + 1),
            5 => Op::DeleteRun(i * 7, (i % 5) + 1),
            _ => Op::Delete(i * 13),
        })
        .collect();
    let mut tree = LTree::new(Params::new(4, 2).unwrap());
    {
        let mut h = Harness::new(&mut tree, 10, "ltree#invariants".into());
        for op in &ops {
            h.apply(op, true);
        }
        h.check_order();
        h.check_cursor();
    }
    tree.check_invariants().unwrap();

    let mut v = VirtualLTree::new(Params::new(4, 2).unwrap());
    {
        let mut h = Harness::new(&mut v, 10, "virtual#invariants".into());
        for op in &ops {
            h.apply(op, true);
        }
        h.check_order();
        h.check_cursor();
    }
    v.check_invariants().unwrap();
}
