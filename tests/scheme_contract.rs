//! The `LabelingScheme` order contract, property-tested across every
//! scheme in the workspace: after any stream of insertions/deletions,
//! live labels strictly increase along list order, and handles stay
//! stable across relabelings.

use ltree::prelude::*;
use ltree::LabelingScheme;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    After(usize),
    Before(usize),
    Many(usize, usize),
    Delete(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0usize..1 << 16).prop_map(Op::After),
            2 => (0usize..1 << 16).prop_map(Op::Before),
            1 => ((0usize..1 << 16), 1usize..20).prop_map(|(a, k)| Op::Many(a, k)),
            1 => (0usize..1 << 16).prop_map(Op::Delete),
        ],
        1..80,
    )
}

/// First live index at or after `i % len`, wrapping; anchoring on
/// deleted items is scheme-specific (the L-Tree allows it, schemes with
/// physical removal do not), so the contract only anchors on live ones.
fn live_at(order: &[(LeafHandle, bool)], i: usize) -> Option<usize> {
    let n = order.len();
    (0..n).map(|d| (i + d) % n).find(|&j| order[j].1)
}

fn exercise<S: LabelingScheme>(mut scheme: S, initial: usize, stream: &[Op]) {
    let mut order: Vec<(LeafHandle, bool)> =
        scheme.bulk_build(initial.max(1)).unwrap().into_iter().map(|h| (h, true)).collect();
    for op in stream {
        match *op {
            Op::After(i) => {
                let Some(i) = live_at(&order, i) else { continue };
                let h = scheme.insert_after(order[i].0).unwrap();
                order.insert(i + 1, (h, true));
            }
            Op::Before(i) => {
                let Some(i) = live_at(&order, i) else { continue };
                let h = scheme.insert_before(order[i].0).unwrap();
                order.insert(i, (h, true));
            }
            Op::Many(i, k) => {
                let Some(i) = live_at(&order, i) else { continue };
                let hs = scheme.insert_many_after(order[i].0, k).unwrap();
                for (j, h) in hs.into_iter().enumerate() {
                    order.insert(i + 1 + j, (h, true));
                }
            }
            Op::Delete(i) => {
                let Some(i) = live_at(&order, i) else { continue };
                if scheme.delete(order[i].0).is_ok() {
                    order[i].1 = false;
                }
            }
        }
        // The contract: live labels strictly increase in list order.
        let mut prev: Option<u128> = None;
        for &(h, alive) in &order {
            if !alive {
                continue;
            }
            let l = match scheme.label_of(h) {
                Ok(l) => l,
                Err(_) => continue, // schemes may invalidate deleted handles only
            };
            if let Some(p) = prev {
                assert!(p < l, "{}: order contract broken ({p} >= {l})", scheme.name());
            }
            prev = Some(l);
        }
    }
    // Final sanity: counts line up.
    let live = order.iter().filter(|&&(_, a)| a).count();
    assert_eq!(scheme.live_len(), live, "{}: live_len mismatch", scheme.name());
    assert!(scheme.label_space_bits() <= 128);
    assert!(scheme.memory_bytes() > 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn ltree_contract(initial in 1usize..50, stream in ops()) {
        exercise(LTree::new(Params::new(4, 2).unwrap()), initial, &stream);
    }

    #[test]
    fn ltree_wide_contract(initial in 1usize..50, stream in ops()) {
        exercise(LTree::new(Params::new(32, 4).unwrap()), initial, &stream);
    }

    #[test]
    fn virtual_contract(initial in 1usize..50, stream in ops()) {
        exercise(VirtualLTree::new(Params::new(4, 2).unwrap()), initial, &stream);
    }

    #[test]
    fn naive_contract(initial in 1usize..50, stream in ops()) {
        exercise(NaiveLabeling::new(), initial, &stream);
    }

    #[test]
    fn gap_contract(initial in 1usize..50, stream in ops()) {
        exercise(GapLabeling::new(), initial, &stream);
    }

    #[test]
    fn gap_tight_contract(initial in 1usize..50, stream in ops()) {
        exercise(GapLabeling::with_gap(2), initial, &stream);
    }

    #[test]
    fn list_label_contract(initial in 1usize..50, stream in ops()) {
        exercise(ListLabeling::new(), initial, &stream);
    }
}

#[test]
fn invariants_hold_after_contract_streams() {
    // A deterministic heavy stream with invariant checking for the trees.
    let stream: Vec<Op> = (0..500)
        .map(|i| match i % 7 {
            0 => Op::Before(i),
            1..=3 => Op::After(i * 31),
            4 => Op::Many(i, (i % 9) + 1),
            _ => Op::Delete(i * 13),
        })
        .collect();
    let mut tree = LTree::new(Params::new(4, 2).unwrap());
    exercise(&mut tree, 10, &stream);
    tree.check_invariants().unwrap();

    let mut v = VirtualLTree::new(Params::new(4, 2).unwrap());
    exercise(&mut v, 10, &stream);
    v.check_invariants().unwrap();
}
