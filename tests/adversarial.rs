//! Adversarial stress tests: the access patterns most likely to break an
//! order-maintenance structure, each with full invariant checking.

use ltree::prelude::*;

#[test]
fn zipper_alternating_front_back() {
    for params in Params::presets() {
        let mut tree = LTree::new(params);
        tree.push_back().unwrap();
        for i in 0..400 {
            if i % 2 == 0 {
                tree.insert_first().unwrap();
            } else {
                tree.push_back().unwrap();
            }
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), 401);
        assert_eq!(tree.stats().cascade_splits, 0);
    }
}

#[test]
fn single_point_hammer() {
    // Every insert lands at the same gap — the densest possible hotspot.
    for params in [Params::new(4, 2).unwrap(), Params::new(16, 4).unwrap()] {
        let (mut tree, leaves) = LTree::bulk_load(params, 64).unwrap();
        let anchor = leaves[31];
        for _ in 0..2_000 {
            tree.insert_after(anchor).unwrap();
        }
        tree.check_invariants().unwrap();
        assert_eq!(
            tree.stats().cascade_splits,
            0,
            "Prop 3 under the worst hotspot"
        );
        // The amortized relabel cost stays logarithmic-ish: far below n.
        let per_op = tree.stats().nodes_relabeled as f64 / 2_000.0;
        assert!(per_op < 64.0, "amortized relabels exploded: {per_op}");
    }
}

#[test]
fn walking_hotspot() {
    // The anchor follows the most recent insert: a moving dense front.
    let (mut tree, leaves) = LTree::bulk_load(Params::new(4, 2).unwrap(), 16).unwrap();
    let mut anchor = leaves[7];
    for _ in 0..3_000 {
        anchor = tree.insert_after(anchor).unwrap();
    }
    tree.check_invariants().unwrap();
    assert_eq!(tree.len(), 3_016);
}

#[test]
fn interleaved_batches_and_deletes() {
    let (mut tree, leaves) = LTree::bulk_load(Params::new(8, 2).unwrap(), 32).unwrap();
    let mut all = leaves;
    for round in 0..60 {
        let anchor = all[round * 37 % all.len()];
        if tree.is_deleted(anchor).unwrap_or(true) {
            continue;
        }
        let batch = tree.insert_many_after(anchor, (round % 17) + 1).unwrap();
        all.extend(batch);
        // Tombstone a stride of leaves.
        for i in (0..all.len()).step_by(11) {
            let _ = tree.delete(all[i]); // AlreadyDeleted is fine
        }
        tree.check_invariants().unwrap();
    }
}

#[test]
fn giant_batch_then_single_inserts() {
    let (mut tree, leaves) = LTree::bulk_load(Params::new(4, 2).unwrap(), 4).unwrap();
    let batch = tree.insert_many_after(leaves[1], 50_000).unwrap();
    tree.check_invariants().unwrap();
    // The structure after a massive batch must absorb singles normally.
    let mut anchor = batch[25_000];
    for _ in 0..500 {
        anchor = tree.insert_after(anchor).unwrap();
    }
    tree.check_invariants().unwrap();
    assert!(
        tree.stats().cascade_splits <= 1,
        "at most the batch itself cascades"
    );
}

#[test]
fn compact_under_pressure() {
    let (mut tree, leaves) = LTree::bulk_load(Params::new(4, 2).unwrap(), 512).unwrap();
    for (i, l) in leaves.iter().enumerate() {
        if i % 3 != 0 {
            tree.delete(*l).unwrap();
        }
    }
    tree.compact().unwrap();
    tree.check_invariants().unwrap();
    assert_eq!(tree.len(), tree.live_len());
    // Survivors keep working as anchors.
    let survivor = tree.first_leaf().unwrap();
    for _ in 0..100 {
        tree.insert_after(survivor).unwrap();
    }
    tree.check_invariants().unwrap();
}

#[test]
fn virtual_zipper_and_hammer() {
    let params = Params::new(4, 2).unwrap();
    let mut v = VirtualLTree::new(params);
    let mut first = v.insert_first().unwrap();
    let mut last = first;
    for i in 0..300 {
        if i % 2 == 0 {
            first = v.insert_before(first).unwrap();
        } else {
            last = v.insert_after(last).unwrap();
        }
    }
    v.check_invariants().unwrap();
    let mut anchor = first;
    for _ in 0..500 {
        anchor = v.insert_after(anchor).unwrap();
    }
    v.check_invariants().unwrap();
    assert_eq!(v.len(), 801);
}

#[test]
fn error_paths_are_typed() {
    let mut tree = LTree::new(Params::new(4, 2).unwrap());
    // Unknown handle from thin air.
    assert!(matches!(
        ltree::OrderedLabelingMut::insert_after(&mut tree, LeafHandle(u64::MAX)),
        Err(ltree::LTreeError::UnknownHandle)
    ));
    // Invalid params.
    assert!(matches!(
        Params::new(5, 2),
        Err(ltree::LTreeError::InvalidParams { .. })
    ));
    // Double delete.
    let l = tree.push_back().unwrap();
    tree.delete(l).unwrap();
    assert!(matches!(
        tree.delete(l),
        Err(ltree::LTreeError::DeletedLeaf)
    ));
    // Zero batch.
    let l2 = tree.push_back().unwrap();
    assert!(matches!(
        tree.insert_many_after(l2, 0),
        Err(ltree::LTreeError::EmptyBatch)
    ));
}

#[test]
fn labels_always_fit_the_declared_space() {
    let params = Params::new(4, 2).unwrap();
    let (mut tree, leaves) = LTree::bulk_load(params, 100).unwrap();
    let mut anchor = leaves[50];
    for i in 0..2_000 {
        anchor = if i % 5 == 0 {
            leaves[i % 100]
        } else {
            tree.insert_after(anchor).unwrap()
        };
        if tree.is_deleted(anchor).unwrap_or(true) {
            anchor = tree.first_leaf().unwrap();
        }
    }
    let space = params.interval(tree.height()).unwrap();
    let bits = tree.label_space_bits();
    for l in tree.leaves() {
        let label = tree.label(l).unwrap();
        assert!(label.get() < space);
        assert!(label.bits() <= bits);
    }
}
