//! # `ltree` — facade crate for the L-Tree reproduction
//!
//! Reproduction of *"L-Tree: a Dynamic Labeling Structure for Ordered XML
//! Data"* (Chen, Mihaila, Bordawekar, Padmanabhan — EDBT 2004 Workshops).
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! * [`ltree_core`] (re-exported at the root) — the materialized
//!   [`LTree`], its parameters, cost model and the [`LabelingScheme`]
//!   abstraction;
//! * [`vtree`] — the *virtual* L-Tree of Section 4.2 (labels only, backed
//!   by a counted B-tree);
//! * [`btree`] — the order-statistic (counted) B-tree substrate;
//! * [`baselines`] — the labeling schemes the paper argues against;
//! * [`tuning`] — the Section 3.2 parameter tuner;
//! * [`xml`] — the XML substrate: parser, DOM, region-labeled documents
//!   and the path-query engine;
//! * [`gen`] — synthetic document and update-workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use ltree::{LTree, Params};
//!
//! let (mut tree, leaves) = LTree::bulk_load(Params::new(4, 2).unwrap(), 8).unwrap();
//! let l = tree.insert_after(leaves[3]).unwrap();
//! assert!(tree.label(leaves[3]).unwrap() < tree.label(l).unwrap());
//! ```
//!
//! See `examples/` for end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction details.

#![forbid(unsafe_code)]

pub use ltree_core::*;

/// Order-statistic (counted) B-tree substrate (paper, Section 4.2).
pub mod btree {
    pub use counted_btree::*;
}

/// The virtual L-Tree: structure recomputed from labels (Section 4.2).
pub mod vtree {
    pub use ltree_virtual::*;
}

/// Baseline labeling schemes (sequential, gapped, list-labeling).
pub mod baselines {
    pub use labeling_baselines::*;
}

/// The `(f, s)` parameter tuner (Section 3.2).
pub mod tuning {
    pub use ltree_tuning::*;
}

/// XML parser, DOM, labeled documents and path queries.
pub mod xml {
    pub use xmldb::*;
}

/// Synthetic XML documents and update workloads.
pub mod gen {
    pub use xmlgen::*;
}

/// The relational storage context (edge table vs region labels).
pub mod rel {
    pub use reldb::*;
}

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use counted_btree::CountedBTree;
    pub use labeling_baselines::{GapLabeling, ListLabeling, NaiveLabeling};
    pub use ltree_core::order::OrderedList;
    pub use ltree_core::{LTree, LabelingScheme, LeafHandle, LeafId, Label, Params};
    pub use ltree_tuning::{optimize_cost, optimize_cost_with_bits, optimize_workload};
    pub use ltree_virtual::VirtualLTree;
    pub use xmldb::{Document, Path, XmlTree};
}
