//! # `ltree` — facade crate for the L-Tree reproduction
//!
//! Reproduction of *"L-Tree: a Dynamic Labeling Structure for Ordered XML
//! Data"* (Chen, Mihaila, Bordawekar, Padmanabhan — EDBT 2004 Workshops).
//! See `PAPER.md` for the abstract and `ROADMAP.md` for where the
//! codebase is heading; the `repro` binary in `ltree-bench` regenerates
//! every experiment table.
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! * [`ltree_core`] (re-exported at the root) — the materialized
//!   [`LTree`], its parameters, cost model, the ordered-labeling trait
//!   family and the scheme registry;
//! * [`vtree`] — the *virtual* L-Tree of Section 4.2 (labels only, backed
//!   by a counted B-tree);
//! * [`btree`] — the order-statistic (counted) B-tree substrate;
//! * [`baselines`] — the labeling schemes the paper argues against;
//! * [`sharded`] — the segment-partitioned composite store: contiguous
//!   segments of the label space, each backed by any registry scheme,
//!   with L-Tree-style split/merge rebalancing one level up;
//! * [`remote`] — the networked label store: a TCP `LabelServer`
//!   hosting any registry scheme, and the `RemoteScheme` client
//!   speaking batch splices over a length-prefixed wire protocol;
//! * [`tuning`] — the Section 3.2 parameter tuner;
//! * [`xml`] — the XML substrate: parser, DOM, region-labeled documents
//!   and the path-query engine;
//! * [`gen`] — synthetic document and update-workload generators.
//!
//! ## The ordered-labeling trait family
//!
//! Every scheme implements four composable traits instead of one
//! monolith (see [`ltree_core::scheme`]):
//!
//! * [`OrderedLabeling`] — reads: [`label_of`](OrderedLabeling::label_of),
//!   [`compare`](OrderedLabeling::compare), and the zero-allocation
//!   streaming [`Cursor`] over handles in list order;
//! * [`OrderedLabelingMut`] — writes: bulk build, insert, delete;
//! * [`BatchLabeling`] — typed [`Splice`] batches (insert `k` after an
//!   anchor; delete a contiguous run) with native fast-paths in the
//!   L-Tree variants and loop fallbacks for the baselines;
//! * [`Instrumented`] — the [`SchemeStats`] cost counters.
//!
//! [`DynScheme`] bundles all four (object-safely); the [`LabelingScheme`]
//! alias keeps the familiar name for generic bounds.
//!
//! ## Quickstart
//!
//! ```
//! use ltree::{LTree, Params};
//!
//! let (mut tree, leaves) = LTree::bulk_load(Params::new(4, 2).unwrap(), 8).unwrap();
//! let l = tree.insert_after(leaves[3]).unwrap();
//! assert!(tree.label(leaves[3]).unwrap() < tree.label(l).unwrap());
//! ```
//!
//! Or pick any scheme at runtime through the registry:
//!
//! ```
//! use ltree::prelude::*;
//!
//! let mut scheme = Scheme::build("virtual(4,2)").unwrap();
//! let handles = scheme.bulk_build(100).unwrap();
//! scheme.splice(Splice::InsertAfter { anchor: handles[50], count: 10 }).unwrap();
//! assert_eq!(scheme.cursor().count(), 110);
//! ```
//!
//! See `examples/` for end-to-end scenarios (`scheme_zoo` sweeps every
//! registered scheme over one workload).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use ltree_core::*;

/// Order-statistic (counted) B-tree substrate (paper, Section 4.2).
pub mod btree {
    pub use counted_btree::*;
}

/// The virtual L-Tree: structure recomputed from labels (Section 4.2).
pub mod vtree {
    pub use ltree_virtual::*;
}

/// The segment-partitioned (sharded) label store composing any scheme.
pub mod sharded {
    pub use ltree_sharded::*;
}

/// The networked label store: server, client and wire protocol.
pub mod remote {
    pub use ltree_remote::*;
}

/// The contract auditor (`checked(inner)`) and the interleaving explorer.
pub mod checked {
    pub use ltree_checked::*;
}

/// The observability layer: metrics registry, latency histograms, span
/// event log and the `traced(inner)` wrapper.
pub mod obs {
    pub use ltree_obs::*;
}

/// Baseline labeling schemes (sequential, gapped, list-labeling).
pub mod baselines {
    pub use labeling_baselines::*;
}

/// The `(f, s)` parameter tuner (Section 3.2).
pub mod tuning {
    pub use ltree_tuning::*;
}

/// XML parser, DOM, labeled documents and path queries.
pub mod xml {
    pub use xmldb::*;
}

/// Synthetic XML documents and update workloads.
pub mod gen {
    pub use xmlgen::*;
}

/// The relational storage context (edge table vs region labels).
pub mod rel {
    pub use reldb::*;
}

/// A registry holding every scheme the workspace ships:
///
/// | name | scheme | spec args |
/// |------|--------|-----------|
/// | `ltree` | materialized L-Tree | `(f,s)` |
/// | `ltree-virtual`, `virtual` | virtual L-Tree | `(f,s)` |
/// | `naive` | consecutive integers | — |
/// | `gap` | fixed-gap midpoints | `(gap)` |
/// | `list-label` | even redistribution | `(bits)` or `(bits,tau)` |
/// | `sharded` | segment-partitioned composite | `(inner)`, `(n,inner)`, or `(n,split,merge,inner)` |
/// | `served` | in-process loopback server + remote client | `(inner[,options])` |
/// | `remote` | client for external label server(s) | `(addrs[,options])` |
/// | `durable` | write-ahead logged, snapshot-checkpointed wrapper | `(inner[,dir=PATH,sync=always\|never,checkpoint_every=N])` |
/// | `checked` | contract auditor over any scheme | `(inner[,every=N])` |
/// | `traced` | latency-tracing wrapper over any scheme | `(inner[,slow_us=N])` |
///
/// `sharded`, `served`, `durable`, `checked` and `traced` compose: their inner
/// argument is any spec this registry resolves, recursively —
/// `sharded(4,ltree(4,2))`, `served(gap)`, `sharded(4,served(ltree))`
/// (each segment behind its own loopback server),
/// `sharded(2,checked(gap))` (every segment audited against its own
/// shadow model), `served(durable(ltree(4,2),dir=…))` (a crash-safe
/// label server), `checked(durable(gap))` (the auditor proving the
/// durability wrapper preserves the ordered-labeling contract),
/// `served(traced(ltree(4,2)))` (a label server whose per-op latency
/// histograms are scrapable over the wire `Metrics` request). The
/// remote client options (`conns=4`,
/// `retries=2`, `reconnect`, `timeout-ms=500`, `coalesce`) configure a
/// [`ltree_remote::ClientPolicy`]; `remote` also accepts a
/// `|`-separated address list, rotated across builds, so
/// `sharded(n,remote(a|b|…))` — the spec a
/// [`ltree_remote::ServerGroup`] hands back — puts one segment on each
/// host. The full grammar lives in [`ltree_core::registry`];
/// `ARCHITECTURE.md` carries the same table for non-rustdoc readers.
pub fn default_registry() -> SchemeRegistry {
    let mut reg = SchemeRegistry::with_builtin();
    ltree_virtual::register(&mut reg);
    labeling_baselines::register(&mut reg);
    ltree_sharded::register(&mut reg);
    ltree_remote::register(&mut reg);
    ltree_checked::register(&mut reg);
    ltree_obs::register(&mut reg);
    reg
}

/// One-shot scheme construction over [`default_registry`]:
/// `Scheme::build("ltree(4,2)")`.
pub struct Scheme;

impl Scheme {
    /// Build a scheme from a spec string with default config.
    pub fn build(spec: &str) -> Result<Box<dyn DynScheme>> {
        default_registry().build(spec)
    }

    /// Build a scheme from a spec string; spec arguments override the
    /// matching [`SchemeConfig`] fields.
    pub fn build_with(spec: &str, config: &SchemeConfig) -> Result<Box<dyn DynScheme>> {
        default_registry().build_with(spec, config)
    }

    /// Names of every scheme in the default registry.
    pub fn names() -> Vec<&'static str> {
        default_registry().names()
    }
}

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::{default_registry, Scheme};
    pub use counted_btree::CountedBTree;
    pub use labeling_baselines::{GapLabeling, ListLabeling, NaiveLabeling};
    pub use ltree_checked::CheckedScheme;
    pub use ltree_core::order::OrderedList;
    pub use ltree_core::{
        BatchLabeling, CallCounter, CallCounts, Cursor, DynScheme, Instrumented, LTree, Label,
        LabelingScheme, LeafHandle, LeafId, OrderedLabeling, OrderedLabelingMut, Params,
        SchemeConfig, SchemeRegistry, Splice, SpliceBuilder, SpliceResult,
    };
    pub use ltree_obs::{render_prometheus, MetricsRegistry, TracedScheme};
    pub use ltree_remote::{
        ClientPolicy, DurableOptions, DurableScheme, Endpoint, LabelServer, RemoteScheme,
        ServerGroup, SyncPolicy, Transport, TransportStats,
    };
    pub use ltree_sharded::{ShardedConfig, ShardedScheme};
    pub use ltree_tuning::{optimize_cost, optimize_cost_with_bits, optimize_workload};
    pub use ltree_virtual::VirtualLTree;
    pub use xmldb::{Document, Path, XmlTree};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn default_registry_covers_all_schemes() {
        let reg = crate::default_registry();
        for name in [
            "ltree",
            "ltree-virtual",
            "virtual",
            "naive",
            "gap",
            "list-label",
            "sharded",
            "served",
            "remote",
            "durable",
            "checked",
            "traced",
        ] {
            assert!(reg.contains(name), "missing {name}");
        }
        // The composite spec resolves any registered inner, recursively.
        let mut s = Scheme::build("sharded(2,virtual(4,2))").unwrap();
        assert_eq!(s.bulk_build(10).unwrap().len(), 10);
        // The networked composites nest the same way: every segment of
        // the sharded store talks to its own loopback server.
        let mut s = Scheme::build("sharded(2,served(ltree(4,2)))").unwrap();
        assert_eq!(s.bulk_build(10).unwrap().len(), 10);
        assert_eq!(s.cursor().count(), 10);
        // The auditor composes in both directions.
        let mut s = Scheme::build("checked(sharded(2,ltree(4,2)),every=2)").unwrap();
        assert_eq!(s.bulk_build(10).unwrap().len(), 10);
        let mut s = Scheme::build("sharded(2,checked(gap))").unwrap();
        assert_eq!(s.bulk_build(10).unwrap().len(), 10);
        // The durability wrapper composes under a server and under the
        // auditor (dir-less builds live in a self-cleaning scratch dir).
        let mut s = Scheme::build("served(durable(ltree(4,2)))").unwrap();
        assert_eq!(s.bulk_build(10).unwrap().len(), 10);
        let mut s = Scheme::build("checked(durable(gap))").unwrap();
        assert_eq!(s.bulk_build(10).unwrap().len(), 10);
        assert_eq!(s.cursor().count(), 10);
        // The tracing wrapper composes everywhere and surfaces nested
        // metrics (its own op histograms + the durable fsync timings).
        let mut s = Scheme::build("traced(durable(ltree(4,2)))").unwrap();
        assert_eq!(s.bulk_build(10).unwrap().len(), 10);
        let metrics = s.metrics();
        assert!(metrics.iter().any(|m| m.name == "obs/op/bulk_build"));
        let mut s = Scheme::build("sharded(2,traced(gap))").unwrap();
        assert_eq!(s.bulk_build(10).unwrap().len(), 10);
        let mut s = Scheme::build("ltree(8,2)").unwrap();
        let hs = s.bulk_build(16).unwrap();
        assert_eq!(s.cursor().count(), 16);
        s.splice(Splice::DeleteRun {
            first: hs[0],
            count: 4,
        })
        .unwrap();
        assert_eq!(s.live_len(), 12);
    }
}
